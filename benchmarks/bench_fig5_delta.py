"""Fig. 5 — impact of delta on the Progressive KD-Tree.

5a first-query cost, 5b queries until pay-off, 5c time until convergence,
5d cumulative workload time (total vs after convergence), each over the
delta sweep 0.1..1.0 for d in {2, 4, 6, 8}, with FS/AKD/Q/AvgKD/MedKD
reference points.
"""

import pytest
from _bench_utils import emit

from repro.bench.experiments import Scale, fig5_delta_impact
from repro.bench.report import format_series

DELTAS = (0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0)
DIMS = (2, 4, 6, 8)


@pytest.fixture(scope="module")
def fig5_scale(scale):
    # The sweep needs a long enough workload tail for every delta to
    # converge (paper: 1000 queries; delta=0.1 converged around query 103).
    return Scale(
        n_small=scale.n_small // 2,
        n_large=scale.n_large,
        n_queries=250,
        selectivity=scale.selectivity,
        size_threshold=scale.size_threshold,
        seed=scale.seed,
    )


@pytest.fixture(scope="module")
def sweep(fig5_scale):
    return fig5_delta_impact(fig5_scale, deltas=DELTAS, dims=DIMS)


def test_fig5a_first_query(benchmark, sweep, results_dir):
    results = benchmark.pedantic(lambda: sweep, rounds=1, iterations=1)
    series = [
        (f"{d} cols", results[d]["first_query"]) for d in DIMS
    ]
    text = format_series(
        "Fig 5a: First query cost vs delta (seconds)",
        "delta",
        list(DELTAS),
        series,
    )
    refs = "\n".join(
        f"  {d} cols: FS={results[d]['references']['FS']['first_query']:.4f}  "
        f"AKD={results[d]['references']['AKD']['first_query']:.4f}  "
        f"Q={results[d]['references']['Q']['first_query']:.4f}"
        for d in DIMS
    )
    emit(results_dir, "fig5a_first_query.txt", text + "\nReference points:\n" + refs)
    for d in DIMS:
        first = results[d]["first_query"]
        # Cost increases (roughly linearly) with delta.
        assert first[-1] > first[0]
        # QUASII's first query is costlier than any PKD delta (paper 5a).
        assert results[d]["references"]["Q"]["first_query"] > first[0]


def test_fig5b_payoff(benchmark, sweep, results_dir):
    results = benchmark.pedantic(lambda: sweep, rounds=1, iterations=1)
    series = [(f"{d} cols", results[d]["payoff_queries"]) for d in DIMS]
    text = format_series(
        "Fig 5b: #Queries until pay-off vs delta",
        "delta",
        list(DELTAS),
        series,
    )
    emit(results_dir, "fig5b_payoff.txt", text)


def test_fig5c_convergence(benchmark, sweep, results_dir):
    results = benchmark.pedantic(lambda: sweep, rounds=1, iterations=1)
    series = [(f"{d} cols", results[d]["convergence_seconds"]) for d in DIMS]
    text = format_series(
        "Fig 5c: Time until convergence vs delta (seconds)",
        "delta",
        list(DELTAS),
        series,
    )
    emit(results_dir, "fig5c_convergence.txt", text)
    for d in DIMS:
        convergence = results[d]["convergence_seconds"]
        assert all(value is not None for value in convergence)


def test_fig5d_cumulative(benchmark, sweep, results_dir):
    results = benchmark.pedantic(lambda: sweep, rounds=1, iterations=1)
    series = []
    for d in DIMS:
        series.append((f"{d} cols total", results[d]["total_seconds"]))
        series.append(
            (f"{d} cols after", results[d]["after_convergence_seconds"])
        )
    text = format_series(
        "Fig 5d: Cumulative workload time vs delta (seconds)",
        "delta",
        list(DELTAS),
        series,
    )
    emit(results_dir, "fig5d_cumulative.txt", text)
    for d in DIMS:
        totals = results[d]["total_seconds"]
        after = results[d]["after_convergence_seconds"]
        for total, tail in zip(totals, after):
            if tail is not None:
                assert tail < total
