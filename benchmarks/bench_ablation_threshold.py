"""Ablation — size_threshold sensitivity.

The paper fixes size_threshold = 1024 ("chosen such that the extra effort
of indexing would not outperform a simple scan").  This ablation sweeps
the threshold for the Adaptive and Progressive KD-Trees and reports total
workload time, final node count, and first-query cost, exposing the
indexing-vs-scanning trade-off behind the chosen constant.
"""

from _bench_utils import emit

from repro.bench import run_workload
from repro.bench.measures import first_query_seconds, total_seconds
from repro.bench.report import format_table
from repro.workloads import make_synthetic_workload

THRESHOLDS = (128, 512, 1024, 4096)


def run_sweep(n_rows=40_000, n_queries=100):
    workload = make_synthetic_workload(
        "uniform", n_rows, 4, n_queries, 0.01, seed=11
    )
    rows = []
    for threshold in THRESHOLDS:
        for name in ("AKD", "PKD"):
            run = run_workload(
                name, workload, size_threshold=threshold, delta=0.2
            )
            rows.append(
                [
                    threshold,
                    name,
                    first_query_seconds(run),
                    total_seconds(run),
                    run.node_counts[-1],
                ]
            )
    return rows


def test_ablation_size_threshold(benchmark, results_dir):
    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    text = format_table(
        "Ablation: size_threshold sweep (Uniform(4), 100 queries)",
        ["threshold", "index", "first query (s)", "total (s)", "nodes"],
        rows,
    )
    emit(results_dir, "ablation_threshold.txt", text)
    akd_nodes = {row[0]: row[4] for row in rows if row[1] == "AKD"}
    # Finer thresholds build bigger trees.
    assert akd_nodes[128] > akd_nodes[4096]
