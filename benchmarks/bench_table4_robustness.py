"""Table IV — per-query time variance over the first 50 queries or until
convergence (smaller is better).

Paper shape: variance(Q) ~ variance(AKD) > variance(PKD) >> variance(GPKD);
the Greedy Progressive KD-Tree is up to three orders of magnitude more
robust than the adaptive techniques.
"""

from _bench_utils import emit

from repro.bench.experiments import table4_robustness
from repro.bench.report import format_table


def test_table4_robustness(benchmark, scale, results_dir):
    headers, rows = benchmark.pedantic(
        lambda: table4_robustness(scale), rounds=1, iterations=1
    )
    text = format_table(
        "Table IV: Query time variance (smaller is better)",
        headers,
        rows,
        precision=6,
    )
    emit(results_dir, "table4_robustness.txt", text)
    progressive_wins = 0
    for row in rows:
        values = dict(zip(headers[1:], row[1:]))
        if min(values, key=values.get) in ("PKD(0.2)", "GPKD(0.2)"):
            progressive_wins += 1
    assert progressive_wins >= (3 * len(rows)) // 4
