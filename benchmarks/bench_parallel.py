"""Morsel-executor scaling sweep: 1/2/4/8 workers over the two scan
shapes that dominate query time.

* a **full scan** of N uniform rows (the pre-index regime — one
  contiguous window split into ``MORSEL_ROWS`` morsels);
* **piece scans over a converged Greedy Progressive KD-Tree** (the
  post-convergence regime — thousands of below-threshold pieces chunked
  across the pool).

The sweep runs traced: ``results/parallel_sweep.jsonl`` is a full
:mod:`repro.obs` trace (fan-out spans with their per-morsel children,
pool-utilisation gauges) that ``python -m repro.obs report`` renders.

The scaling assertion — 4 workers at least 2x over serial on the piece
scan — only fires when the machine actually has >= 4 CPUs; a single-core
runner can only check that fan-out overhead stays bounded.
"""

import os

import numpy as np
from _bench_utils import emit

import repro.obs as obs
from repro.bench.report import format_table
from repro.core import GreedyProgressiveKDTree, RangeQuery, Table
from repro.core.metrics import QueryStats
from repro.core.scan import full_scan
from repro.parallel import config as parallel_config

N = int(os.environ.get("REPRO_BENCH_PARALLEL_N", 10_000_000))
WORKERS = (1, 2, 4, 8)
REPEATS = 3
#: Cap on the probe queries that drive the GPKD to convergence.
MAX_DRIVE_QUERIES = 300


def best_of(fn, repeats=REPEATS):
    import time

    times = []
    for _ in range(repeats):
        begin = time.perf_counter()
        fn()
        times.append(time.perf_counter() - begin)
    return min(times)


def measure_sweep():
    rng = np.random.default_rng(0)
    matrix = rng.random((N, 3))
    columns = [np.ascontiguousarray(matrix[:, d]) for d in range(3)]
    moderate = RangeQuery([0.25] * 3, [0.75] * 3)

    scan_seconds = {}
    for count in WORKERS:
        parallel_config.set_workers(count)
        full_scan(columns, moderate, QueryStats())  # warm-up
        scan_seconds[count] = best_of(
            lambda: full_scan(columns, moderate, QueryStats())
        )

    # Converge a GPKD (parallel refinement does the driving), then sweep
    # the same query over its piece scans.
    table = Table.from_matrix(matrix)
    del matrix
    parallel_config.set_workers(min(4, os.cpu_count() or 1))
    index = GreedyProgressiveKDTree(table, delta=0.5, size_threshold=4096)
    probe = RangeQuery([-np.inf] * 3, [np.inf] * 3)
    drives = 0
    while not index.converged and drives < MAX_DRIVE_QUERIES:
        index.query(probe)
        drives += 1

    piece_seconds = {}
    for count in WORKERS:
        parallel_config.set_workers(count)
        index.query(moderate)  # warm-up
        piece_seconds[count] = best_of(lambda: index.query(moderate))

    # One traced pass per worker count — the timings above stay
    # untraced (span emission costs a visible fraction of a ms-scale
    # piece scan), the trace is a separate inspection artifact.
    trace_path = os.path.join(
        os.path.dirname(__file__), "results", "parallel_sweep.jsonl"
    )
    obs.enable(
        path=trace_path,
        meta={
            "benchmark": "parallel_sweep",
            "n_rows": N,
            "workers": list(WORKERS),
            "cpu_count": os.cpu_count(),
        },
    )
    try:
        for count in WORKERS:
            parallel_config.set_workers(count)
            full_scan(columns, moderate, QueryStats())
            index.query(moderate)
    finally:
        obs.disable()

    parallel_config.set_workers(1)
    parallel_config.shutdown_pool()
    return scan_seconds, piece_seconds, index.converged, drives


def test_parallel_scaling(benchmark, results_dir):
    scan_seconds, piece_seconds, converged, drives = benchmark.pedantic(
        measure_sweep, rounds=1, iterations=1
    )

    rows = []
    for count in WORKERS:
        rows.append([
            f"full scan, {count} worker(s)",
            scan_seconds[count],
            f"{scan_seconds[1] / scan_seconds[count]:.2f}x",
        ])
    for count in WORKERS:
        rows.append([
            f"GPKD piece scan, {count} worker(s)",
            piece_seconds[count],
            f"{piece_seconds[1] / piece_seconds[count]:.2f}x",
        ])
    text = format_table(
        f"Morsel-executor scaling over N={N:,} rows "
        f"(cpu_count={os.cpu_count()}, GPKD converged={converged} "
        f"after {drives} probes)",
        ["operation", "seconds", "speedup vs serial"],
        rows,
    )
    emit(results_dir, "parallel_scaling.txt", text)

    cpus = os.cpu_count() or 1
    if cpus >= 4:
        # The tentpole claim: 4-worker piece scans at least 2x serial.
        speedup = piece_seconds[1] / piece_seconds[4]
        assert speedup >= 2.0, (
            f"4-worker piece scan only {speedup:.2f}x over serial "
            f"on a {cpus}-CPU machine"
        )
    # Everywhere (even 1 CPU): fanning out must never be catastrophic.
    # On a single core every worker count is pure overhead, so the bound
    # is looser there; with real cores the overhead must stay small.
    bound = 1.5 if cpus >= 4 else 2.5
    for count in WORKERS:
        assert piece_seconds[count] < piece_seconds[1] * bound
        assert scan_seconds[count] < scan_seconds[1] * bound
