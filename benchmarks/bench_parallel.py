"""Morsel-executor scaling sweep: threads x processes over the two scan
shapes that dominate query time.

* a **full scan** of N uniform rows (the pre-index regime — one
  contiguous window split into ``MORSEL_ROWS`` morsels);
* **piece scans over a converged Greedy Progressive KD-Tree** (the
  post-convergence regime — thousands of below-threshold pieces chunked
  across the pool).

Both shapes are swept twice: over the thread pool (1/2/4/8 workers) and
over the process pool (1/2/4 workers, ``REPRO_PROCS`` tier).  The
process sweep is the GIL-escape measurement — columns live in shared
memory, workers attach zero-copy views, and the piece-scan index is
*built* under the process tier so its index table lands in shared
segments.

The sweep runs traced: ``results/parallel_sweep.jsonl`` is a full
:mod:`repro.obs` trace (fan-out spans with their per-morsel children,
pool-utilisation gauges) that ``python -m repro.obs report`` renders.

The scaling assertions — 4 workers / 4 procs at least 2x over serial on
the piece scan — only fire when the machine actually has >= 4 CPUs; a
single-core runner can only check that fan-out overhead stays bounded.
"""

import os

import numpy as np
from _bench_utils import emit

import repro.obs as obs
from repro.bench.report import format_table
from repro.core import GreedyProgressiveKDTree, RangeQuery, Table
from repro.core.metrics import QueryStats
from repro.core.scan import full_scan
from repro.parallel import config as parallel_config
from repro.parallel import procpool
from repro.parallel import shm as parallel_shm

N = int(os.environ.get("REPRO_BENCH_PARALLEL_N", 10_000_000))
WORKERS = (1, 2, 4, 8)
PROCS = (1, 2, 4)
REPEATS = 3
#: Cap on the probe queries that drive the GPKD to convergence.
MAX_DRIVE_QUERIES = 300
#: Flat allowance for fixed process-dispatch cost (pickle + IPC) that
#: cannot amortize when REPRO_BENCH_PARALLEL_N is dialled down.
PROC_DISPATCH_GRACE = 0.05


def best_of(fn, repeats=REPEATS):
    import time

    times = []
    for _ in range(repeats):
        begin = time.perf_counter()
        fn()
        times.append(time.perf_counter() - begin)
    return min(times)


def drive_to_convergence(index):
    probe = RangeQuery([-np.inf] * 3, [np.inf] * 3)
    drives = 0
    while not index.converged and drives < MAX_DRIVE_QUERIES:
        index.query(probe)
        drives += 1
    return drives


def measure_sweep():
    rng = np.random.default_rng(0)
    matrix = rng.random((N, 3))
    columns = [np.ascontiguousarray(matrix[:, d]) for d in range(3)]
    moderate = RangeQuery([0.25] * 3, [0.75] * 3)

    scan_seconds = {}
    for count in WORKERS:
        parallel_config.set_workers(count)
        full_scan(columns, moderate, QueryStats())  # warm-up
        scan_seconds[count] = best_of(
            lambda: full_scan(columns, moderate, QueryStats())
        )

    # Converge a GPKD (parallel refinement does the driving), then sweep
    # the same query over its piece scans.
    table = Table.from_matrix(matrix)
    del matrix
    parallel_config.set_workers(min(4, os.cpu_count() or 1))
    index = GreedyProgressiveKDTree(table, delta=0.5, size_threshold=4096)
    drives = drive_to_convergence(index)

    piece_seconds = {}
    for count in WORKERS:
        parallel_config.set_workers(count)
        index.query(moderate)  # warm-up
        piece_seconds[count] = best_of(lambda: index.query(moderate))

    # ---- process tier: same shapes over the process pool ------------
    # Thread workers pinned at 1 so the two tiers never compose; the
    # serial point of each proc sweep is the true single-process path.
    parallel_config.set_workers(1)
    block = parallel_shm.share_arrays(columns)
    shared_columns = list(block.arrays)

    proc_scan_seconds = {}
    for count in PROCS:
        procpool.set_process_workers(count)
        if count > 1:
            procpool.warm_up()
        full_scan(shared_columns, moderate, QueryStats())  # warm-up
        proc_scan_seconds[count] = best_of(
            lambda: full_scan(shared_columns, moderate, QueryStats())
        )

    # Build (and converge) a second GPKD *under the process tier*: with
    # procs active at creation the index table is allocated in shared
    # segments, so the converged piece scans below dispatch to workers.
    procpool.set_process_workers(max(PROCS))
    shared_table = Table(shared_columns)
    proc_index = GreedyProgressiveKDTree(
        shared_table, delta=0.5, size_threshold=4096
    )
    proc_drives = drive_to_convergence(proc_index)

    proc_piece_seconds = {}
    for count in PROCS:
        procpool.set_process_workers(count)
        proc_index.query(moderate)  # warm-up
        proc_piece_seconds[count] = best_of(
            lambda: proc_index.query(moderate)
        )

    # One traced pass per worker count — the timings above stay
    # untraced (span emission costs a visible fraction of a ms-scale
    # piece scan), the trace is a separate inspection artifact.
    trace_path = os.path.join(
        os.path.dirname(__file__), "results", "parallel_sweep.jsonl"
    )
    obs.enable(
        path=trace_path,
        meta={
            "benchmark": "parallel_sweep",
            "n_rows": N,
            "workers": list(WORKERS),
            "procs": list(PROCS),
            "cpu_count": os.cpu_count(),
        },
    )
    try:
        procpool.set_process_workers(1)
        for count in WORKERS:
            parallel_config.set_workers(count)
            full_scan(columns, moderate, QueryStats())
            index.query(moderate)
        parallel_config.set_workers(1)
        for count in PROCS:
            procpool.set_process_workers(count)
            full_scan(shared_columns, moderate, QueryStats())
            proc_index.query(moderate)
    finally:
        obs.disable()

    parallel_config.set_workers(1)
    parallel_config.shutdown_pool()
    procpool.set_process_workers(1)
    procpool.shutdown_procs()
    del proc_index, shared_table, shared_columns
    block.release()
    return {
        "scan": scan_seconds,
        "piece": piece_seconds,
        "proc_scan": proc_scan_seconds,
        "proc_piece": proc_piece_seconds,
        "converged": index.converged,
        "drives": drives,
        "proc_drives": proc_drives,
    }


def test_parallel_scaling(benchmark, results_dir):
    sweep = benchmark.pedantic(measure_sweep, rounds=1, iterations=1)
    scan_seconds = sweep["scan"]
    piece_seconds = sweep["piece"]
    proc_scan_seconds = sweep["proc_scan"]
    proc_piece_seconds = sweep["proc_piece"]

    rows = []
    for count in WORKERS:
        rows.append([
            f"full scan, {count} thread(s)",
            scan_seconds[count],
            f"{scan_seconds[1] / scan_seconds[count]:.2f}x",
        ])
    for count in WORKERS:
        rows.append([
            f"GPKD piece scan, {count} thread(s)",
            piece_seconds[count],
            f"{piece_seconds[1] / piece_seconds[count]:.2f}x",
        ])
    for count in PROCS:
        rows.append([
            f"full scan, {count} proc(s)",
            proc_scan_seconds[count],
            f"{proc_scan_seconds[1] / proc_scan_seconds[count]:.2f}x",
        ])
    for count in PROCS:
        rows.append([
            f"GPKD piece scan, {count} proc(s)",
            proc_piece_seconds[count],
            f"{proc_piece_seconds[1] / proc_piece_seconds[count]:.2f}x",
        ])
    text = format_table(
        f"Thread + process scaling over N={N:,} rows "
        f"(cpu_count={os.cpu_count()}, GPKD converged={sweep['converged']} "
        f"after {sweep['drives']}/{sweep['proc_drives']} probes)",
        ["operation", "seconds", "speedup vs serial"],
        rows,
    )
    emit(results_dir, "parallel_scaling.txt", text)

    cpus = os.cpu_count() or 1
    if cpus >= 4:
        # The thread-tier claim: 4-worker piece scans at least 2x serial.
        speedup = piece_seconds[1] / piece_seconds[4]
        assert speedup >= 2.0, (
            f"4-worker piece scan only {speedup:.2f}x over serial "
            f"on a {cpus}-CPU machine"
        )
        # The GIL-escape claim: 4 process workers at least 2x serial on
        # converged-GPKD piece scans (N defaults to 1e7 >= 1e6).
        proc_speedup = proc_piece_seconds[1] / proc_piece_seconds[4]
        assert proc_speedup >= 2.0, (
            f"4-proc piece scan only {proc_speedup:.2f}x over serial "
            f"on a {cpus}-CPU machine"
        )
    # Everywhere (even 1 CPU): fanning out must never be catastrophic.
    # On a single core every worker count is pure overhead, so the bound
    # is looser there; with real cores the overhead must stay small.
    bound = 1.5 if cpus >= 4 else 2.5
    for count in WORKERS:
        assert piece_seconds[count] < piece_seconds[1] * bound
        assert scan_seconds[count] < scan_seconds[1] * bound
    # Process dispatch carries a fixed pickle/IPC cost on top of the
    # multiplicative allowance; the grace keeps the bound meaningful
    # when N is dialled down for smoke runs.
    for count in PROCS:
        assert (
            proc_piece_seconds[count]
            < proc_piece_seconds[1] * bound + PROC_DISPATCH_GRACE
        )
        assert (
            proc_scan_seconds[count]
            < proc_scan_seconds[1] * bound + PROC_DISPATCH_GRACE
        )
