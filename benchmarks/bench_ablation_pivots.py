"""Ablation — mean vs median pivots for the full KD-Tree baselines.

The paper keeps both AvgKD and MedKD because they trade build cost against
balance: medians cost more to compute but guarantee a balanced tree, which
matters on skewed data.  This ablation quantifies both sides.
"""

import time

from _bench_utils import emit

from repro import AverageKDTree, MedianKDTree
from repro.bench.report import format_table
from repro.workloads.data import skewed_table, uniform_table
from repro.workloads.patterns import uniform_queries


def run_ablation(n_rows=60_000, threshold=1024):
    rows = []
    for data_name, table in (
        ("uniform", uniform_table(n_rows, 3, seed=1)),
        ("skewed", skewed_table(n_rows, 3, seed=1)),
    ):
        queries = uniform_queries(table, 30, 0.01, seed=2)
        for cls in (AverageKDTree, MedianKDTree):
            index = cls(table, size_threshold=threshold)
            begin = time.perf_counter()
            index.query(queries[0])
            build = time.perf_counter() - begin
            begin = time.perf_counter()
            for query in queries[1:]:
                index.query(query)
            probe = time.perf_counter() - begin
            rows.append(
                [
                    data_name,
                    cls.name,
                    build,
                    probe,
                    index.tree.height(),
                    index.node_count,
                ]
            )
    return rows


def test_ablation_pivot_strategy(benchmark, results_dir):
    rows = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    text = format_table(
        "Ablation: mean vs median pivots (full KD-Tree build)",
        ["data", "index", "build (s)", "29 queries (s)", "height", "nodes"],
        rows,
    )
    emit(results_dir, "ablation_pivots.txt", text)
    by_key = {(row[0], row[1]): row for row in rows}
    # Median build costs more...
    assert by_key[("uniform", "MedKD")][2] > by_key[("uniform", "AvgKD")][2]
    # ...but stays balanced on skew where the mean-pivot tree degrades.
    assert by_key[("skewed", "MedKD")][4] <= by_key[("skewed", "AvgKD")][4]
