"""Observability overhead benchmark: the disabled hooks must be free.

Every kernel dispatch and every ``BaseIndex.query`` now carries an
``if obs_trace.ENABLED`` hook.  This benchmark measures that hook
against a hook-free call (invoking the active backend directly — the
exact code path the dispatch layer ran before instrumentation) and
asserts the tracing-disabled overhead stays under 2% wall-clock on the
most hook-dense shape we have: many scans over small pieces, where the
per-call check is amortised the least.

The enabled cost is also measured and reported (not asserted): tracing
is a debugging tool and may cost whatever it costs.
"""

import time

import numpy as np
from _bench_utils import emit

import repro.obs as obs
from repro import RangeQuery, kernels
from repro.bench.report import format_table
from repro.core.metrics import QueryStats
from repro.obs.sink import ListSink

PIECE_ROWS = 4_096
N_PIECES = 256
REPEATS = 25


def _make_inputs():
    rng = np.random.default_rng(0)
    columns = [rng.random(PIECE_ROWS * N_PIECES) for _ in range(2)]
    query = RangeQuery([0.2, 0.2], [0.6, 0.6])
    return columns, query


def _sweep(scan, columns, query):
    """Scan every piece via ``scan`` (the instrumented dispatch or the
    reconstructed hook-free baseline — pre-bound, so both sides pay the
    same call overhead and the measured delta is the hook alone)."""
    stats = QueryStats()
    for piece in range(N_PIECES):
        start = piece * PIECE_ROWS
        scan(columns, start, start + PIECE_ROWS, query, stats)


def _plain_dispatch(backend):
    """The pre-instrumentation dispatch function, reconstructed: one
    module-level wrapper forwarding to the active backend, no hook."""

    def range_scan(columns, start, end, query, stats,
                   check_low=None, check_high=None):
        return backend.range_scan(
            columns, start, end, query, stats, check_low, check_high
        )

    return range_scan


def _time(fn):
    begin = time.perf_counter()
    fn()
    return time.perf_counter() - begin


def measure_overhead(attempts=4, good_enough=0.015):
    """Best-of-attempts paired measurement of the disabled hook cost.

    Timing noise is one-sided here: a scheduler blip or frequency drop
    can only make a variant look *slower*, never faster, so each attempt
    keeps the per-variant minimum over alternating samples, and the
    measurement keeps the attempt with the lowest overhead ratio.  The
    loop stops early once an attempt lands comfortably under the gate.
    """
    columns, query = _make_inputs()
    plain = _plain_dispatch(kernels.active_backend())
    obs.disable()

    run_direct = lambda: _sweep(plain, columns, query)
    run_dispatch = lambda: _sweep(kernels.range_scan, columns, query)
    run_direct()  # warm caches and code paths
    run_dispatch()

    best = None
    for _ in range(attempts):
        direct = _time(run_direct)
        disabled = _time(run_dispatch)
        for _ in range(REPEATS):
            disabled = min(disabled, _time(run_dispatch))
            direct = min(direct, _time(run_direct))
        if best is None or disabled / direct < best[1] / best[0]:
            best = (direct, disabled)
        if best[1] / best[0] - 1.0 < good_enough:
            break
    direct, disabled = best

    obs.enable(sink=ListSink(), metrics=True)
    try:
        enabled = min(_time(run_dispatch) for _ in range(3))
    finally:
        obs.disable()
        obs.REGISTRY.reset()
    return {"direct": direct, "disabled": disabled, "enabled": enabled}


def test_disabled_overhead_under_two_percent(benchmark, results_dir):
    seconds = benchmark.pedantic(measure_overhead, rounds=1, iterations=1)
    overhead = seconds["disabled"] / seconds["direct"] - 1.0
    traced = seconds["enabled"] / seconds["direct"] - 1.0
    calls = N_PIECES
    text = format_table(
        f"Observability hook cost ({calls} piece scans x {PIECE_ROWS} rows)",
        ["variant", "seconds", "overhead"],
        [
            ["direct backend call (no hook)", seconds["direct"], "-"],
            ["dispatch, tracing disabled", seconds["disabled"],
             f"{overhead * 100:+.2f}%"],
            ["dispatch, tracing enabled", seconds["enabled"],
             f"{traced * 100:+.2f}%"],
        ],
    )
    emit(results_dir, "obs_overhead.txt", text)
    # The acceptance gate: a disabled hook is one module-global load and
    # a branch — under 2% even on this hook-dense small-piece sweep.
    assert overhead < 0.02, (
        f"tracing-disabled dispatch is {overhead * 100:.2f}% slower than "
        f"the hook-free baseline (gate: <2%)"
    )
