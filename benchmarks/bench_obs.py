"""Observability overhead benchmark: the disabled hooks must be free.

Every kernel dispatch and every ``BaseIndex.query`` now carries an
``if obs_trace.ENABLED`` hook.  This benchmark measures that hook
against a hook-free call (invoking the active backend directly — the
exact code path the dispatch layer ran before instrumentation) and
asserts the tracing-disabled overhead stays under 2% wall-clock on the
most hook-dense shape we have: many scans over small pieces, where the
per-call check is amortised the least.  That twin-based gate also
covers the serve query hot path's disabled cost: the kernel dispatch
is its hook-dense inner loop, and the serve layer adds only a handful
of module-global checks per request on top.

The *enabled* cost is gated separately for the serve-layer
instrumentation (per-tenant latency histograms, lock wait/hold
observations, convergence gauges — everything the telemetry plane
added to ``IndexServer.execute_query`` and below).  The A/B/C
measurement runs the server hot path with (A) metrics off, (B) metrics
on but the serve-layer feeds suppressed — i.e. only the pre-existing
kernel/index instruments — and (C) everything on, on a converged
200k-row index where per-query work is smallest and per-request
instrumentation is amortised the least.  The gate is C vs B < 5%: what
the telemetry plane itself costs a served query.  C vs A (the whole
metered stack, exporter mode) is reported, not asserted, like the
tracing-enabled kernel cost — per-piece kernel histograms are a
profiling tool with their own price.
"""

import time

import numpy as np
import pytest
from _bench_utils import emit

import repro.obs as obs
from repro import RangeQuery, kernels
from repro.bench.report import format_table
from repro.core.metrics import QueryStats
from repro.obs.sink import ListSink

PIECE_ROWS = 4_096
N_PIECES = 256
REPEATS = 25


def _make_inputs():
    rng = np.random.default_rng(0)
    columns = [rng.random(PIECE_ROWS * N_PIECES) for _ in range(2)]
    query = RangeQuery([0.2, 0.2], [0.6, 0.6])
    return columns, query


def _sweep(scan, columns, query):
    """Scan every piece via ``scan`` (the instrumented dispatch or the
    reconstructed hook-free baseline — pre-bound, so both sides pay the
    same call overhead and the measured delta is the hook alone)."""
    stats = QueryStats()
    for piece in range(N_PIECES):
        start = piece * PIECE_ROWS
        scan(columns, start, start + PIECE_ROWS, query, stats)


def _plain_dispatch(backend):
    """The pre-instrumentation dispatch function, reconstructed: one
    module-level wrapper forwarding to the active backend, no hook."""

    def range_scan(columns, start, end, query, stats,
                   check_low=None, check_high=None):
        return backend.range_scan(
            columns, start, end, query, stats, check_low, check_high
        )

    return range_scan


def _time(fn):
    begin = time.perf_counter()
    fn()
    return time.perf_counter() - begin


def measure_overhead(attempts=4, good_enough=0.015):
    """Best-of-attempts paired measurement of the disabled hook cost.

    Timing noise is one-sided here: a scheduler blip or frequency drop
    can only make a variant look *slower*, never faster, so each attempt
    keeps the per-variant minimum over alternating samples, and the
    measurement keeps the attempt with the lowest overhead ratio.  The
    loop stops early once an attempt lands comfortably under the gate.
    The collector is paused while sampling — a GC cycle inside one
    variant's window is pure one-sided noise at this resolution.
    """
    import gc

    columns, query = _make_inputs()
    plain = _plain_dispatch(kernels.active_backend())
    obs.disable()

    run_direct = lambda: _sweep(plain, columns, query)
    run_dispatch = lambda: _sweep(kernels.range_scan, columns, query)
    run_direct()  # warm caches and code paths
    run_dispatch()

    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        best = None
        for _ in range(attempts):
            direct = _time(run_direct)
            disabled = _time(run_dispatch)
            for _ in range(REPEATS):
                disabled = min(disabled, _time(run_dispatch))
                direct = min(direct, _time(run_direct))
            if best is None or disabled / direct < best[1] / best[0]:
                best = (direct, disabled)
            if best[1] / best[0] - 1.0 < good_enough:
                break
        direct, disabled = best

        obs.enable(sink=ListSink(), metrics=True)
        try:
            enabled = min(_time(run_dispatch) for _ in range(3))
        finally:
            obs.disable()
            obs.REGISTRY.reset()
    finally:
        if gc_was_enabled:
            gc.enable()
    return {"direct": direct, "disabled": disabled, "enabled": enabled}


def test_disabled_overhead_under_two_percent(benchmark, results_dir):
    seconds = benchmark.pedantic(measure_overhead, rounds=1, iterations=1)
    overhead = seconds["disabled"] / seconds["direct"] - 1.0
    traced = seconds["enabled"] / seconds["direct"] - 1.0
    calls = N_PIECES
    text = format_table(
        f"Observability hook cost ({calls} piece scans x {PIECE_ROWS} rows)",
        ["variant", "seconds", "overhead"],
        [
            ["direct backend call (no hook)", seconds["direct"], "-"],
            ["dispatch, tracing disabled", seconds["disabled"],
             f"{overhead * 100:+.2f}%"],
            ["dispatch, tracing enabled", seconds["enabled"],
             f"{traced * 100:+.2f}%"],
        ],
    )
    emit(results_dir, "obs_overhead.txt", text)
    # The acceptance gate: a disabled hook is one module-global load and
    # a branch — under 2% even on this hook-dense small-piece sweep.
    assert overhead < 0.02, (
        f"tracing-disabled dispatch is {overhead * 100:.2f}% slower than "
        f"the hook-free baseline (gate: <2%)"
    )


# ------------------------------------------------------- serve hot path

SERVE_ROWS = 200_000
SERVE_QUERIES = 120
SERVE_REPEATS = 8


def _serve_queries(n_dims=2):
    rng = np.random.default_rng(11)
    queries = []
    for _ in range(SERVE_QUERIES):
        lows = rng.random(n_dims) * 90.0
        queries.append(
            {
                f"c{dim}": (float(lows[dim]), float(lows[dim]) + 5.0)
                for dim in range(n_dims)
            }
        )
    return queries


class _MetricsOff:
    """Stand-in for :mod:`repro.obs.metrics` whose feed gate is shut.

    Patching a module's ``obs_metrics`` attribute to this suppresses its
    metric feeds (every call site checks ``obs_metrics.ENABLED``) while
    the real module-global gate stays open for everyone else — the B
    configuration below: core instruments on, serve-layer feeds off.
    """

    ENABLED = False


def _suppress_serve_metrics():
    """Swap the serve layer's ``obs_metrics`` references for
    :class:`_MetricsOff`; returns an undo callable."""
    from repro.serve import admission, locks, scheduler, server

    modules = (server, locks, scheduler, admission)
    originals = [module.obs_metrics for module in modules]
    for module in modules:
        module.obs_metrics = _MetricsOff

    def restore():
        for module, original in zip(modules, originals):
            module.obs_metrics = original

    return restore


def measure_serve_overhead(attempts=SERVE_REPEATS, good_enough=0.03):
    """Paired A/B/C of ``execute_query``: (A) telemetry off, (B) metrics
    on with the serve-layer feeds suppressed (only the pre-existing
    kernel/index instruments fire), (C) everything on.

    The index is driven to convergence first so every variant measures
    a stable, smallest-work-per-query path, and the samples are
    interleaved so any residual drift (cache state, scheduler slices)
    lands on all sides.  Minima per side for the same one-sided-noise
    reason as :func:`measure_overhead`, and the collector is paused
    during sampling — a GC cycle landing inside one variant's window
    would skew a paired ratio this tight.
    """
    import gc

    from repro.obs import metrics as obs_metrics
    from repro.serve.protocol import TableSpec
    from repro.serve.server import IndexServer

    obs.disable()
    spec = TableSpec("bench", "uniform", SERVE_ROWS, 2, seed=3)
    server = IndexServer(technique="greedy", size_threshold=1024)
    try:
        server.register_table(spec.name, spec=spec)
        session = server.open_session("bench-tenant")
        queries = _serve_queries()

        def run():
            for position, bounds in enumerate(queries):
                mode = "snapshot" if position % 4 == 0 else "adaptive"
                server.execute_query(session, spec.name, bounds, mode=mode)

        run()  # builds the index and starts cracking
        entry = next(iter(server._session(session).indexes.values()))
        for _ in range(200):  # converge: adaptive queries refine per-query
            if getattr(entry.index, "converged", False):
                break
            run()

        disabled = core = full = float("inf")
        gc_was_enabled = gc.isenabled()
        gc.disable()
        try:
            for _ in range(attempts):
                obs.disable()
                disabled = min(disabled, _time(run))
                obs_metrics.enable()
                restore = _suppress_serve_metrics()
                try:
                    run()  # warm the core handle caches post-suppression
                    core = min(core, _time(run))
                finally:
                    restore()
                try:
                    run()  # warm the serve-layer handle caches
                    full = min(full, _time(run))
                finally:
                    obs_metrics.disable()
                if full / core - 1.0 < good_enough:
                    break
        finally:
            if gc_was_enabled:
                gc.enable()
    finally:
        obs.disable()
        obs.REGISTRY.reset()
        server.close()
    return {"disabled": disabled, "core": core, "full": full}


def test_serve_enabled_overhead_under_five_percent(benchmark, results_dir):
    seconds = benchmark.pedantic(
        measure_serve_overhead, rounds=1, iterations=1
    )
    overhead = seconds["full"] / seconds["core"] - 1.0
    stack = seconds["full"] / seconds["disabled"] - 1.0
    text = format_table(
        f"Serve hot-path telemetry cost ({SERVE_QUERIES} queries, "
        f"converged {SERVE_ROWS}-row greedy index)",
        ["variant", "seconds", "overhead"],
        [
            ["execute_query, telemetry disabled", seconds["disabled"], "-"],
            ["metrics on, serve-layer feeds suppressed (core only)",
             seconds["core"],
             f"{(seconds['core'] / seconds['disabled'] - 1) * 100:+.2f}%"],
            ["metrics on, everything (exporter mode)", seconds["full"],
             f"{stack * 100:+.2f}% ({overhead * 100:+.2f}% vs core)"],
        ],
    )
    emit(results_dir, "obs_serve_overhead.txt", text)
    # The serve-layer gate: the per-tenant latency histograms, lock
    # wait/hold observations, and convergence gauges this PR added to the
    # serving path must together cost under 5% of a served query even at
    # the smallest per-query work.  The full metered stack vs disabled
    # (which also pays the PR-3 per-piece kernel histograms, a profiling
    # tool with its own price) is reported above, not gated.
    assert overhead < 0.05, (
        f"serve-layer instruments make execute_query {overhead * 100:.2f}% "
        f"slower than the core-instruments-only path (gate: <5%)"
    )


# ------------------------------------------------- proc-dispatched scans

PROC_ROWS = 1 << 19  # four morsels per scan — a real fan-out, small work
PROC_WORKERS = 2
PROC_SWEEP_REPEATS = 10


def measure_proc_overhead(attempts=6, good_enough=0.03):
    """Paired cost of the cross-process telemetry bridge.

    The same shm-backed ``executor.scan_range`` fan-out runs with the
    telemetry planes off (workers skip all capture, tasks return the
    legacy tuple shape) and on (workers trace + meter every task, the
    payload rides back on the result, the parent re-parents and folds).
    Minima per side, interleaved attempts, collector paused — the same
    one-sided-noise regime as the other paired measurements here.
    """
    import gc

    from repro.parallel import executor, procpool
    from repro.parallel import shm as parallel_shm

    columns = [np.random.default_rng(5).random(PROC_ROWS) for _ in range(2)]
    query = RangeQuery([0.2, 0.2], [0.6, 0.6])
    obs.disable()
    block = parallel_shm.share_arrays(columns)
    shared = list(block.arrays)
    procs_restore = procpool.get_process_workers()
    procpool.set_process_workers(PROC_WORKERS)
    try:
        procpool.warm_up()

        def run():
            for _ in range(PROC_SWEEP_REPEATS):
                stats = QueryStats()
                executor.scan_range(shared, 0, PROC_ROWS, query, stats)

        run()  # warm the pool, caches, and pickled-query paths
        disabled = enabled = float("inf")
        gc_was_enabled = gc.isenabled()
        gc.disable()
        try:
            for _ in range(attempts):
                obs.disable()
                disabled = min(disabled, _time(run))
                obs.enable(sink=ListSink(), metrics=True)
                try:
                    run()  # warm the bridge's instrument handles
                    enabled = min(enabled, _time(run))
                finally:
                    obs.disable()
                if enabled / disabled - 1.0 < good_enough:
                    break
        finally:
            if gc_was_enabled:
                gc.enable()
    finally:
        obs.disable()
        obs.REGISTRY.reset()
        procpool.shutdown_procs()
        procpool.set_process_workers(procs_restore)
        block.release()
    return {"disabled": disabled, "enabled": enabled}


def test_proc_dispatch_enabled_overhead_under_five_percent(
    benchmark, results_dir
):
    import os

    if (os.cpu_count() or 1) < 2:
        pytest.skip("process tier needs at least 2 CPUs")
    seconds = benchmark.pedantic(
        measure_proc_overhead, rounds=1, iterations=1
    )
    overhead = seconds["enabled"] / seconds["disabled"] - 1.0
    tasks = PROC_SWEEP_REPEATS * (PROC_ROWS // (1 << 17))
    text = format_table(
        f"Cross-process telemetry bridge cost ({tasks} proc tasks per "
        f"sweep, {PROC_WORKERS} workers)",
        ["variant", "seconds", "overhead"],
        [
            ["proc scan, telemetry disabled", seconds["disabled"], "-"],
            ["proc scan, tracing+metrics enabled", seconds["enabled"],
             f"{overhead * 100:+.2f}%"],
        ],
    )
    emit(results_dir, "obs_proc_overhead.txt", text)
    # The bridge gate: worker-side capture plus parent-side re-parenting
    # and metric folding must cost under 5% of a proc-dispatched scan.
    assert overhead < 0.05, (
        f"the telemetry bridge makes proc-dispatched scans "
        f"{overhead * 100:.2f}% slower than with telemetry off (gate: <5%)"
    )
