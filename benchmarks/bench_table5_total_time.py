"""Table V — total workload response time (seconds).

Paper shape: the Adaptive KD-Tree has the lowest total time on most
workloads (its minimal-indexing design), QUASII wins on the highly skewed
ones, Sequential is AKD's worst case, and everything except AKD loses to
the plain scan on Shift.
"""

from _bench_utils import emit

from repro.bench.experiments import grid_runs, table5_total_time
from repro.bench.measures import total_work
from repro.bench.report import format_table


def test_table5_total_time(benchmark, scale, results_dir):
    headers, rows = benchmark.pedantic(
        lambda: table5_total_time(scale), rounds=1, iterations=1
    )
    text = format_table("Table V: Total response time (seconds)", headers, rows)
    emit(results_dir, "table5_total_time.txt", text)
    # Who-wins claims are checked in deterministic work units: wall-clock
    # at laptop scale is dominated by fixed per-piece interpreter overhead
    # (at the paper's 50M-row scale the element counts dominate both).
    runs = grid_runs(scale)
    unif = {
        name: total_work(runs[("Unif(8)", name)])
        for name in ("FS", "AKD", "PKD", "Q")
    }
    assert unif["AKD"] < unif["FS"]  # AKD beats the scan on Uniform
    seq = {
        name: total_work(runs[("Seq(2)", name)]) for name in ("AKD", "PKD")
    }
    # Sequential is AKD's worst case: progressive indexing wins there.
    assert seq["PKD"] < seq["AKD"]
