"""Extension bench — stochastic cracking on the 1-D substrate.

The 1-D analogue of the paper's Sequential pathology: plain query-bound
cracking re-partitions the huge unrefined piece ahead of a sequential
sweep on every query, while DDC/DDR auxiliary pivots bound the pieces.
Reports per-query cracking cost statistics for the three variants.
"""

import numpy as np
from _bench_utils import emit

from repro.baselines.cracking1d import CrackerColumn
from repro.baselines.stochastic_cracking import StochasticCrackerColumn
from repro.bench.report import format_table
from repro.core.metrics import QueryStats


def run_sweep(n_rows=100_000, n_queries=100):
    rng = np.random.default_rng(3)
    keys = rng.random(n_rows) * 1_000.0
    step = 1_000.0 / n_queries
    rows = []
    for name, cracker in (
        ("plain", CrackerColumn(keys)),
        ("ddc", StochasticCrackerColumn(keys, variant="ddc", size_threshold=1024)),
        ("ddr", StochasticCrackerColumn(keys, variant="ddr", size_threshold=1024)),
    ):
        costs = []
        for i in range(n_queries):
            stats = QueryStats()
            cracker.range_rowids(i * step, (i + 1) * step, stats)
            costs.append(stats.copied)
        costs = np.asarray(costs, dtype=float)
        rows.append(
            [
                name,
                float(costs.sum()),
                float(np.median(costs)),
                float(costs.max()),
                float(np.var(costs)),
                cracker.n_cracks,
            ]
        )
    return rows


def test_stochastic_cracking_sequential(benchmark, results_dir):
    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    text = format_table(
        "Extension: stochastic cracking under a sequential sweep "
        "(per-query cracking cost, element moves)",
        ["variant", "total", "median", "max", "variance", "cracks"],
        rows,
        precision=1,
    )
    emit(results_dir, "stochastic_cracking.txt", text)
    by_name = {row[0]: row for row in rows}
    # DDC/DDR total and typical costs collapse relative to plain cracking.
    assert by_name["ddc"][1] < by_name["plain"][1]
    assert by_name["ddc"][2] < by_name["plain"][2] / 4
    assert by_name["ddr"][1] < by_name["plain"][1]
