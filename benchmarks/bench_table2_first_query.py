"""Table II — first query response time (seconds).

Paper shape: MedKD > AvgKD > Q > AKD > PKD ~ GPKD > FS on every workload;
the adaptive indexes are up to an order of magnitude cheaper than the full
indexes, the progressive ones up to an order cheaper than the adaptive.
"""

from _bench_utils import emit

from repro.bench.experiments import table2_first_query
from repro.bench.report import format_table


def test_table2_first_query(benchmark, scale, results_dir):
    headers, rows = benchmark.pedantic(
        lambda: table2_first_query(scale), rounds=1, iterations=1
    )
    text = format_table(
        "Table II: First query response time (seconds)", headers, rows
    )
    emit(results_dir, "table2_first_query.txt", text)
    by_name = {row[0]: dict(zip(headers[1:], row[1:])) for row in rows}
    unif = by_name["Unif(8)"]
    assert unif["MedKD"] >= unif["AvgKD"] > unif["AKD"] > unif["PKD(0.2)"]
    assert unif["Q"] > unif["PKD(0.2)"]
    assert unif["FS"] < unif["AKD"]
