"""Fig. 7 — full scan cost above the interactivity threshold tau.

Per-query model-domain costs for FS, AKD (pre-processing first query),
PKD(0.2), GPFP(0.2), and GPFQ(10) over the first 100 queries, with
tau set to half the measured full-scan cost.

Paper shape: AKD pays one enormous first query and then stays under tau;
PKD descends gradually; GPFQ holds a flat elevated cost for exactly ten
queries then drops; GPFP similar with the drop slightly later.
"""

import numpy as np
from _bench_utils import emit

from repro.bench.asciiplot import line_chart
from repro.bench.experiments import fig7_interactivity
from repro.bench.report import format_series


def test_fig7_interactivity(benchmark, scale, results_dir):
    out = benchmark.pedantic(
        lambda: fig7_interactivity(scale), rounds=1, iterations=1
    )
    tau = out["tau"]
    text = format_series(
        f"Fig 7: Per-query model cost with tau={tau:.6f}s "
        "(scan exceeds the interactivity threshold)",
        "query",
        out["queries"],
        out["series"],
        precision=6,
    )
    chart = line_chart(
        out["series"],
        logy=True,
        hline=tau,
        hline_label="tau",
        y_label="model seconds",
        x_label="query",
    )
    emit(results_dir, "fig7_interactivity.txt", text + "\n\n" + chart)
    by_name = dict(out["series"])
    # FS sits permanently above tau.
    assert all(value > tau for value in by_name["FS"])
    # AKD's first query is an order of magnitude above the scan.
    assert by_name["AKD"][0] > 5 * np.mean(by_name["FS"])
    # GPFQ(10): flat spread for ten queries, then the drop.
    gpfq = by_name["GPFQ(10)"]
    spread = np.asarray(gpfq[:9])
    assert spread.std() / spread.mean() < 0.2
    assert gpfq[10] < gpfq[8] / 2
    # PKD starts cheaper than GPFQ's spread but descends more gradually.
    assert by_name["PKD(0.2)"][0] < gpfq[0]
