"""Extension bench — Z-order range decomposition for SFC cracking.

Quantifies how much the Tropf/Herzog-style decomposition shrinks the
candidate set that the naive corner-to-corner translation forces SFC
cracking to post-filter, across range-budget settings.
"""

import numpy as np
from _bench_utils import emit

from repro import SFCCracking
from repro.bench.report import format_table
from repro.workloads import make_synthetic_workload

BUDGETS = (0, 4, 16, 64)  # 0 = naive single range


def run_comparison(n_rows=40_000, n_queries=60):
    workload = make_synthetic_workload(
        "uniform", n_rows, 2, n_queries, 0.01, seed=21
    )
    rows = []
    for budget in BUDGETS:
        index = SFCCracking(workload.table, decompose_ranges=budget)
        scanned = 0
        matched = 0
        for query in workload.queries:
            result = index.query(query)
            scanned += result.stats.scanned
            matched += result.count
        candidates = scanned / index.n_dims  # post-filter touches d columns
        rows.append(
            [
                "naive" if budget == 0 else f"decomposed({budget})",
                int(candidates),
                matched,
                candidates / max(1, matched),
                index.node_count,
            ]
        )
    return rows


def test_zorder_decomposition(benchmark, results_dir):
    rows = benchmark.pedantic(run_comparison, rounds=1, iterations=1)
    text = format_table(
        "Extension: Z-order query translation — candidates scanned vs "
        "true matches (Uniform(2), 60 queries)",
        ["translation", "candidates", "matches", "candidates/match", "cracks"],
        rows,
        precision=2,
    )
    emit(results_dir, "zorder_decomposition.txt", text)
    by_name = {row[0]: row for row in rows}
    # More ranges -> fewer false candidates, monotonically.
    assert by_name["decomposed(64)"][1] < by_name["decomposed(4)"][1]
    assert by_name["decomposed(64)"][1] < by_name["naive"][1] / 3
