"""Extension bench — ExplorationSession facade overhead.

The facade adds name resolution, dictionary translation, and per-group
index routing on top of a raw index.  This bench confirms the layer costs
a bounded constant per query, not a scan-proportional factor.
"""

import time

import numpy as np
from _bench_utils import emit

from repro import GreedyProgressiveKDTree, RangeQuery, Table
from repro.bench.report import format_table
from repro.session import ExplorationSession


def run_comparison(n_rows=40_000, n_queries=200):
    rng = np.random.default_rng(41)
    lat = rng.random(n_rows) * 90
    lon = rng.random(n_rows) * 180

    bounds = []
    for _ in range(n_queries):
        low_lat = float(rng.random() * 80)
        low_lon = float(rng.random() * 160)
        bounds.append((low_lat, low_lat + 9.0, low_lon, low_lon + 18.0))

    # Raw index path.
    table = Table([lat, lon], names=["lat", "lon"])
    raw = GreedyProgressiveKDTree(table, delta=0.2, size_threshold=1024)
    begin = time.perf_counter()
    raw_rows = 0
    for a, b, c, d in bounds:
        raw_rows += raw.query(RangeQuery([a, c], [b, d])).count
    raw_seconds = time.perf_counter() - begin

    # Facade path (same technique underneath).
    session = ExplorationSession()
    session.register("geo", {"lat": lat, "lon": lon})
    begin = time.perf_counter()
    session_rows = 0
    for a, b, c, d in bounds:
        session_rows += session.query("geo", lat=(a, b), lon=(c, d)).count
    session_seconds = time.perf_counter() - begin

    assert raw_rows == session_rows
    per_query_overhead = (session_seconds - raw_seconds) / n_queries
    return [
        ["raw index", raw_seconds, raw_seconds / n_queries],
        ["session facade", session_seconds, session_seconds / n_queries],
        ["overhead/query", per_query_overhead, None],
    ]


def test_session_overhead(benchmark, results_dir):
    rows = benchmark.pedantic(run_comparison, rounds=1, iterations=1)
    text = format_table(
        "Extension: session facade overhead (200 queries, 40k rows)",
        ["path", "total (s)", "per query (s)"],
        rows,
        precision=6,
    )
    emit(results_dir, "session_overhead.txt", text)
    by_name = {row[0]: row for row in rows}
    # The facade must cost within ~75% of the raw path on small queries
    # (bounded constant work: kwarg parsing, group lookup, result object).
    assert by_name["session facade"][1] < by_name["raw index"][1] * 1.75
