"""Helpers shared by the benchmark scripts."""

import os

from repro.bench.report import save_report


def emit(results_dir: str, name: str, text: str) -> None:
    """Print a report and persist it under benchmarks/results/."""
    print("\n" + text)
    save_report(os.path.join(results_dir, name), text)
