"""Ablation — scan strategy: candidate lists (option 2) vs per-column
bitmaps (option 1).

Section III-A argues option 2 wins at high selectivity because only the
first column is scanned fully; option 1 wins at very low selectivity.
This ablation sweeps per-dimension selectivity and reports both.
"""

import numpy as np
from _bench_utils import emit

from repro import RangeQuery, Table
from repro.core.metrics import QueryStats
from repro.core.scan import full_scan, full_scan_bitmap
from repro.bench.report import format_table

SELECTIVITIES = (0.001, 0.01, 0.1, 0.3, 0.6, 0.9)


def run_sweep(n_rows=200_000, n_dims=4, repeats=3):
    rng = np.random.default_rng(0)
    table = Table.from_matrix(rng.random((n_rows, n_dims)))
    rows = []
    for selectivity in SELECTIVITIES:
        query = RangeQuery([0.0] * n_dims, [selectivity] * n_dims)
        candidate = min(
            _time(full_scan, table, query) for _ in range(repeats)
        )
        bitmap = min(
            _time(full_scan_bitmap, table, query) for _ in range(repeats)
        )
        stats = QueryStats()
        full_scan(table.columns(), query, stats)
        rows.append(
            [selectivity, candidate, bitmap, stats.scanned, n_rows * n_dims]
        )
    return rows


def _time(kernel, table, query):
    import time

    stats = QueryStats()
    begin = time.perf_counter()
    kernel(table.columns(), query, stats)
    return time.perf_counter() - begin


def test_ablation_scan_strategy(benchmark, results_dir):
    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    text = format_table(
        "Ablation: candidate-list (option 2) vs bitmap (option 1) scans",
        [
            "per-dim selectivity",
            "option2 (s)",
            "option1 (s)",
            "option2 elems",
            "option1 elems",
        ],
        rows,
        precision=5,
    )
    emit(results_dir, "ablation_scan.txt", text)
    # At high selectivity (small windows) option 2 touches far fewer
    # elements; that is why every index here scans with candidate lists.
    highest = rows[0]
    assert highest[3] < highest[4] / 2
