"""Aggregate pushdown over KD-based indexes."""

import numpy as np
import pytest

from repro import AdaptiveKDTree, AverageKDTree, IndexStateError, RangeQuery
from repro.core.aggregates import AggregateReader
from tests.conftest import make_queries, make_uniform_table


@pytest.fixture
def warm():
    table = make_uniform_table(4_000, 2, seed=130)
    index = AdaptiveKDTree(table, size_threshold=64)
    queries = make_queries(table, 12, width_fraction=0.25, seed=131)
    for query in queries:
        index.query(query)
    return table, index, queries


def brute(table, query):
    keep = np.ones(table.n_rows, dtype=bool)
    for dim in range(table.n_columns):
        column = table.column(dim)
        keep &= (column > query.lows[dim]) & (column <= query.highs[dim])
    return np.flatnonzero(keep)


class TestCount:
    def test_exact(self, warm):
        table, index, queries = warm
        reader = AggregateReader(index)
        for query in queries:
            count, _ = reader.count(query)
            assert count == brute(table, query).size

    def test_refined_query_counts_from_metadata(self, warm):
        """After refinement, the tree fully covers the query's pieces and
        the count needs no data access at all."""
        table, index, queries = warm
        reader = AggregateReader(index)
        _, count_stats = reader.count(queries[0])
        assert count_stats.scanned == 0

    def test_unrefined_region_requires_scanning(self):
        table = make_uniform_table(2_000, 2, seed=140)
        index = AdaptiveKDTree(table, size_threshold=64)
        query = make_queries(table, 1, width_fraction=0.3, seed=141)[0]
        index.query(query)  # refine around this query only
        reader = AggregateReader(index)
        span = table.n_rows
        fresh = RangeQuery([0.7 * span, 0.7 * span], [0.85 * span, 0.85 * span])
        count, stats = reader.count(fresh)
        assert count == brute(table, fresh).size
        assert stats.scanned > 0  # cold region: pieces only partially covered

    def test_empty_query(self, warm):
        table, index, _ = warm
        reader = AggregateReader(index)
        query = RangeQuery([1e7, 1e7], [2e7, 2e7])
        count, _ = reader.count(query)
        assert count == 0

    def test_whole_domain_is_metadata_only(self, warm):
        table, index, _ = warm
        reader = AggregateReader(index)
        query = RangeQuery([-np.inf, -np.inf], [np.inf, np.inf])
        count, stats = reader.count(query)
        assert count == table.n_rows
        assert stats.scanned == 0  # every piece fully covered


class TestSumMinMaxAvg:
    def test_sum_exact(self, warm):
        table, index, queries = warm
        reader = AggregateReader(index)
        for query in queries[:6]:
            total, _ = reader.sum(query, column=1)
            want = table.column(1)[brute(table, query)].sum()
            assert total == pytest.approx(float(want), rel=1e-9)

    def test_min_max_exact(self, warm):
        table, index, queries = warm
        reader = AggregateReader(index)
        for query in queries[:6]:
            hits = brute(table, query)
            lowest, _ = reader.minimum(query, column=0)
            highest, _ = reader.maximum(query, column=0)
            if hits.size == 0:
                assert lowest is None and highest is None
            else:
                assert lowest == pytest.approx(float(table.column(0)[hits].min()))
                assert highest == pytest.approx(float(table.column(0)[hits].max()))

    def test_average_exact(self, warm):
        table, index, queries = warm
        reader = AggregateReader(index)
        query = queries[0]
        average, _ = reader.average(query, column=1)
        want = table.column(1)[brute(table, query)].mean()
        assert average == pytest.approx(float(want), rel=1e-9)

    def test_average_empty_is_none(self, warm):
        _, index, _ = warm
        reader = AggregateReader(index)
        average, _ = reader.average(RangeQuery([1e7, 1e7], [2e7, 2e7]), 0)
        assert average is None

    def test_piece_aggregates_cached(self, warm):
        _, index, queries = warm
        reader = AggregateReader(index)
        reader.sum(queries[0], column=1)
        cached = len(reader._piece_stats)
        _, second_stats = reader.sum(queries[0], column=1)
        assert len(reader._piece_stats) == cached  # no recomputation
        assert cached > 0


class TestRefinementInteraction:
    def test_stays_exact_as_index_refines(self):
        table = make_uniform_table(3_000, 2, seed=132)
        index = AdaptiveKDTree(table, size_threshold=32)
        queries = make_queries(table, 10, width_fraction=0.3, seed=133)
        index.query(queries[0])
        reader = AggregateReader(index)
        for query in queries:
            count_before, _ = reader.count(query)
            index.query(query)  # refines further, replaces pieces
            count_after, _ = reader.count(query)
            assert count_before == count_after == brute(table, query).size

    def test_works_on_full_index(self):
        table = make_uniform_table(2_000, 2, seed=134)
        index = AverageKDTree(table, size_threshold=64)
        query = make_queries(table, 1, width_fraction=0.4, seed=135)[0]
        index.query(query)
        reader = AggregateReader(index)
        count, _ = reader.count(query)
        assert count == brute(table, query).size

    def test_rejects_unbuilt_index(self):
        table = make_uniform_table(100, 2, seed=136)
        with pytest.raises(IndexStateError):
            AggregateReader(AdaptiveKDTree(table))
