"""Approximate Progressive KD-Tree (paper future work)."""

import numpy as np
import pytest

from repro import (
    ApproximateProgressiveKDTree,
    InvalidParameterError,
    ProgressiveKDTree,
)
from tests.conftest import assert_correct, make_queries, make_uniform_table


@pytest.fixture
def table():
    return make_uniform_table(4_000, 3, seed=9)


@pytest.fixture
def queries(table):
    return make_queries(table, 30, width_fraction=0.3, seed=10)


class TestExactPath:
    def test_exact_query_still_correct(self, table, queries):
        # The inherited query() path must stay exact even with the
        # permuted creation order.
        index = ApproximateProgressiveKDTree(table, delta=0.2, size_threshold=64)
        assert_correct(index, table, queries)

    def test_converges_like_plain_progressive(self, table, queries):
        index = ApproximateProgressiveKDTree(table, delta=0.5, size_threshold=64)
        for _ in range(80):
            index.query(queries[0])
            if index.converged:
                break
        assert index.converged

    def test_rowids_are_a_permutation_after_creation(self, table, queries):
        index = ApproximateProgressiveKDTree(table, delta=1.0, size_threshold=64)
        index.query(queries[0])
        assert np.array_equal(
            np.sort(index.index_table.rowids), np.arange(table.n_rows)
        )


class TestApproximateAnswers:
    def test_partial_hits_are_true_hits(self, table, queries):
        index = ApproximateProgressiveKDTree(table, delta=0.2, size_threshold=64)
        exact = ProgressiveKDTree(table, delta=0.2, size_threshold=64)
        for query in queries[:4]:
            answer = index.approximate_query(query)
            truth = set(exact.query(query).row_ids.tolist())
            assert set(answer.row_ids.tolist()) <= truth

    def test_support_grows_per_query(self, table, queries):
        index = ApproximateProgressiveKDTree(table, delta=0.25, size_threshold=64)
        supports = [
            index.approximate_query(query).support for query in queries[:5]
        ]
        assert supports[0] == pytest.approx(0.25, abs=0.01)
        assert supports[1] == pytest.approx(0.50, abs=0.01)
        assert supports[3] == pytest.approx(1.0)
        assert supports[4] == 1.0

    def test_estimate_unbiased_ish(self, table):
        # Across many queries the estimate should track the true count.
        index = ApproximateProgressiveKDTree(
            table, delta=0.4, size_threshold=64, seed=3
        )
        exact = ProgressiveKDTree(table, delta=1.0, size_threshold=64)
        errors = []
        for query in make_queries(table, 20, width_fraction=0.4, seed=11):
            fresh = ApproximateProgressiveKDTree(
                table, delta=0.4, size_threshold=64, seed=5
            )
            answer = fresh.approximate_query(query)
            truth = exact.query(query).count
            if truth:
                errors.append((answer.estimated_count - truth) / truth)
        assert abs(np.mean(errors)) < 0.15

    def test_interval_contains_truth_usually(self, table):
        exact = ProgressiveKDTree(table, delta=1.0, size_threshold=64)
        hits = 0
        total = 0
        for seed, query in enumerate(
            make_queries(table, 25, width_fraction=0.4, seed=12)
        ):
            fresh = ApproximateProgressiveKDTree(
                table, delta=0.3, size_threshold=64, seed=seed
            )
            answer = fresh.approximate_query(query)
            truth = exact.query(query).count
            total += 1
            if answer.low <= truth <= answer.high:
                hits += 1
        assert hits / total >= 0.8  # nominal 95%, generous slack

    def test_exact_after_creation(self, table, queries):
        index = ApproximateProgressiveKDTree(table, delta=1.0, size_threshold=64)
        answer = index.approximate_query(queries[0])
        assert answer.exact
        assert answer.estimated_count == answer.low == answer.high
        exact = ProgressiveKDTree(table, delta=1.0, size_threshold=64)
        truth = exact.query(queries[0])
        assert np.array_equal(
            np.sort(answer.row_ids), np.sort(truth.row_ids)
        )

    def test_approximate_cheaper_than_exact_early(self, table, queries):
        approx = ApproximateProgressiveKDTree(table, delta=0.1, size_threshold=64)
        exact = ProgressiveKDTree(table, delta=0.1, size_threshold=64)
        approx_stats = approx.approximate_query(queries[0]).stats
        exact_stats = exact.query(queries[0]).stats
        assert approx_stats.scanned < exact_stats.scanned / 2

    def test_interval_widths_shrink(self, table, queries):
        index = ApproximateProgressiveKDTree(table, delta=0.2, size_threshold=64)
        widths = []
        for query in queries[:4]:
            answer = index.approximate_query(queries[0])
            if not answer.exact:
                widths.append(answer.high - answer.low)
        assert all(b <= a * 1.05 for a, b in zip(widths, widths[1:]))

    def test_repr(self, table, queries):
        index = ApproximateProgressiveKDTree(table, delta=0.2, size_threshold=64)
        text = repr(index.approximate_query(queries[0]))
        assert "support" in text

    def test_invalid_confidence(self, table):
        with pytest.raises(InvalidParameterError):
            ApproximateProgressiveKDTree(table, confidence_z=0.0)
