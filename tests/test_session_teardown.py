"""Session teardown under an active background refiner.

``ExplorationSession.close()`` (and the context-manager exit that calls
it) must stop every :class:`BackgroundRefiner` worker it started: no
leaked threads, quiescence genuinely held whenever invariants are
checked, and the session still queryable afterwards.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

import repro.session as session_module
from repro.session import ExplorationSession


def _refine_thread_names():
    return [
        t.name for t in threading.enumerate() if t.name == "repro-bg-refine"
    ]


def _make_session(**kwargs):
    session = ExplorationSession(
        technique="greedy",
        size_threshold=256,
        background_refine=True,
        **kwargs,
    )
    rng = np.random.default_rng(2)
    session.register(
        "t", {"x": rng.random(6_000) * 100, "y": rng.random(6_000) * 100}
    )
    return session


class TestClose:
    def test_close_stops_refiner_threads(self):
        before = _refine_thread_names()
        session = _make_session()
        session.query("t", x=(10.0, 40.0), y=(10.0, 40.0))
        assert len(_refine_thread_names()) == len(before) + 1, (
            "background_refine=True should have started a refiner"
        )
        session.close()
        for refiner_thread in threading.enumerate():
            if refiner_thread.name == "repro-bg-refine":
                refiner_thread.join(timeout=5)
        assert _refine_thread_names() == before, "refiner thread leaked"

    def test_close_is_idempotent_and_session_stays_usable(self):
        session = _make_session()
        session.query("t", x=(10.0, 40.0))
        session.close()
        session.close()  # second close is a no-op
        result = session.query("t", x=(10.0, 40.0))
        assert result.count >= 0  # still answers (just without maintenance)
        assert session.check()  # and still checkable

    def test_context_manager_joins_threads(self):
        before = _refine_thread_names()
        with _make_session() as session:
            session.query("t", x=(5.0, 60.0), y=(5.0, 60.0))
            assert len(_refine_thread_names()) == len(before) + 1
        for refiner_thread in threading.enumerate():
            if refiner_thread.name == "repro-bg-refine":
                refiner_thread.join(timeout=5)
        assert _refine_thread_names() == before

    def test_context_manager_closes_on_exception(self):
        before = _refine_thread_names()
        with pytest.raises(RuntimeError):
            with _make_session() as session:
                session.query("t", x=(5.0, 60.0))
                raise RuntimeError("exploration went sideways")
        for refiner_thread in threading.enumerate():
            if refiner_thread.name == "repro-bg-refine":
                refiner_thread.join(timeout=5)
        assert _refine_thread_names() == before


class TestQuiescenceDuringChecks:
    def test_final_check_runs_with_refiner_quiescent(self, monkeypatch):
        """While ``session.check()`` inspects an index, its background
        refiner must be quiescent — the structural sweep observes the
        index at rest (invariant I9's ownership handoff)."""
        session = _make_session()
        session.query("t", x=(10.0, 40.0), y=(10.0, 40.0))
        (index,) = session._tables["t"].indexes.values()
        refiner = index._background
        observed = []

        import repro.invariants as invariants

        real_structural_errors = invariants.structural_errors

        def spying_structural_errors(checked_index):
            observed.append(refiner.quiescent)
            return real_structural_errors(checked_index)

        # session.check() imports the symbol from repro.invariants at
        # call time, so patching the module attribute intercepts it.
        monkeypatch.setattr(
            invariants, "structural_errors", spying_structural_errors
        )
        findings = session.check()
        assert observed and all(observed), (
            "structural check ran while a refinement slice was mid-flight"
        )
        assert all(not problems for problems in findings.values())
        session.close()

    def test_refiner_made_progress_before_close(self):
        """The teardown tests must be exercising a *live* refiner: give
        it think time and require actual slices before closing."""
        session = _make_session()
        import time

        # Drive the GPKD through creation so think-time slices can run.
        from repro.core.progressive_kdtree import CREATION

        while session._tables["t"].indexes == {} or (
            next(iter(session._tables["t"].indexes.values())).phase
            == CREATION
        ):
            session.query("t", x=(10.0, 40.0), y=(10.0, 40.0))
        (index,) = session._tables["t"].indexes.values()
        refiner = index._background
        deadline = time.monotonic() + 20
        while refiner.slices_run == 0 and time.monotonic() < deadline:
            refiner.poke()
            time.sleep(0.01)
        assert refiner.slices_run > 0, "background refiner never ran a slice"
        session.close()
        assert not refiner.alive
        # Post-close invariant sweep: the refiner's final state is clean.
        assert all(not problems for problems in session.check().values())
