"""Appends, deletes, and merges on the Adaptive KD-Tree."""

import numpy as np
import pytest

from repro import InvalidParameterError, InvalidTableError, RangeQuery
from repro.core.updates import AppendableAdaptiveKDTree
from tests.conftest import make_queries, make_uniform_table


def logical_answer(columns, deleted, query):
    """Ground truth over the logical table (per-column arrays + tombstones)."""
    keep = np.ones(columns[0].shape[0], dtype=bool)
    for dim in range(len(columns)):
        keep &= (columns[dim] > query.lows[dim]) & (
            columns[dim] <= query.highs[dim]
        )
    hits = np.flatnonzero(keep)
    return np.array([h for h in hits if h not in deleted], dtype=np.int64)


class Mirror:
    """A growing logical table mirrored next to the index under test."""

    def __init__(self, table):
        self.columns = [column.copy() for column in table.columns()]
        self.deleted = set()

    def append(self, rows):
        for dim in range(len(self.columns)):
            self.columns[dim] = np.concatenate([self.columns[dim], rows[:, dim]])

    def check(self, index, query):
        got = np.sort(index.query(query).row_ids)
        want = logical_answer(self.columns, self.deleted, query)
        assert np.array_equal(got, want), (got.size, want.size)


@pytest.fixture
def setup():
    table = make_uniform_table(2_000, 2, seed=21)
    index = AppendableAdaptiveKDTree(
        table, size_threshold=64, merge_fraction=0.1
    )
    return table, index, Mirror(table)


class TestAppend:
    def test_appended_rows_visible_immediately(self, setup):
        table, index, mirror = setup
        queries = make_queries(table, 5, width_fraction=0.3, seed=22)
        index.query(queries[0])
        rng = np.random.default_rng(23)
        rows = rng.random((50, 2)) * table.n_rows
        ids = index.append(rows)
        mirror.append(rows)
        assert ids[0] == table.n_rows
        for query in queries:
            mirror.check(index, query)

    def test_append_single_row(self, setup):
        table, index, mirror = setup
        row = np.array([10.0, 10.0])
        ids = index.append(row)
        mirror.append(row.reshape(1, 2))
        assert ids.shape == (1,)
        query = RangeQuery([9.0, 9.0], [11.0, 11.0])
        mirror.check(index, query)

    def test_append_shape_validated(self, setup):
        _, index, _ = setup
        with pytest.raises(InvalidTableError):
            index.append(np.ones((3, 5)))

    def test_interleaved_appends_and_queries(self, setup):
        table, index, mirror = setup
        rng = np.random.default_rng(24)
        queries = make_queries(table, 20, width_fraction=0.3, seed=25)
        for i, query in enumerate(queries):
            if i % 3 == 0:
                rows = rng.random((30, 2)) * table.n_rows
                index.append(rows)
                mirror.append(rows)
            mirror.check(index, query)


class TestDelete:
    def test_deleted_rows_disappear(self, setup):
        table, index, mirror = setup
        query = make_queries(table, 1, width_fraction=0.5, seed=26)[0]
        first = index.query(query)
        victims = first.row_ids[:10]
        assert index.delete(victims) == 10
        mirror.deleted.update(int(v) for v in victims)
        mirror.check(index, query)

    def test_delete_is_idempotent(self, setup):
        _, index, _ = setup
        assert index.delete([5, 5, 5]) == 1
        assert index.delete([5]) == 0

    def test_delete_pending_row(self, setup):
        table, index, mirror = setup
        rows = np.array([[50.0, 50.0]])
        ids = index.append(rows)
        mirror.append(rows)
        index.delete(ids)
        mirror.deleted.update(int(v) for v in ids)
        query = RangeQuery([49.0, 49.0], [51.0, 51.0])
        mirror.check(index, query)

    def test_out_of_range_ids_ignored(self, setup):
        _, index, _ = setup
        assert index.delete([10**9, -4]) == 0


class TestMerge:
    def test_merge_triggered_by_fraction(self, setup):
        table, index, mirror = setup
        rng = np.random.default_rng(27)
        queries = make_queries(table, 3, width_fraction=0.3, seed=28)
        index.query(queries[0])
        rows = rng.random((300, 2)) * table.n_rows  # > 10% of 2000
        index.append(rows)
        mirror.append(rows)
        index.query(queries[1])
        assert index.merges_performed >= 1
        assert index.n_pending == 0
        for query in queries:
            mirror.check(index, query)

    def test_merge_preserves_refinement(self, setup):
        table, index, mirror = setup
        queries = make_queries(table, 8, width_fraction=0.3, seed=29)
        for query in queries:
            index.query(query)
        nodes_before = index.node_count
        rng = np.random.default_rng(30)
        rows = rng.random((250, 2)) * table.n_rows
        index.append(rows)
        mirror.append(rows)
        index.merge_pending()
        # Re-cracking along the old pivots keeps most of the structure.
        assert index.node_count >= nodes_before // 2
        for query in queries:
            mirror.check(index, query)

    def test_merge_compacts_tombstones(self, setup):
        table, index, mirror = setup
        query = make_queries(table, 1, width_fraction=0.6, seed=31)[0]
        result = index.query(query)
        victims = result.row_ids[:50]
        index.delete(victims)
        mirror.deleted.update(int(v) for v in victims)
        index.merge_pending()
        assert index.n_deleted == 0
        assert index.index_table.n_rows == table.n_rows - 50
        mirror.check(index, query)

    def test_logical_rows_accounting(self, setup):
        table, index, mirror = setup
        assert index.logical_rows == table.n_rows
        rows = np.ones((10, 2))
        index.append(rows)
        assert index.logical_rows == table.n_rows + 10
        index.delete([0, 1])
        assert index.logical_rows == table.n_rows + 8

    def test_merge_before_any_query(self, setup):
        table, index, mirror = setup
        rows = np.random.default_rng(32).random((20, 2)) * table.n_rows
        index.append(rows)
        mirror.append(rows)
        index.merge_pending()
        query = make_queries(table, 1, width_fraction=0.4, seed=33)[0]
        mirror.check(index, query)

    def test_stress_mixed_workload(self, setup):
        table, index, mirror = setup
        rng = np.random.default_rng(34)
        queries = make_queries(table, 30, width_fraction=0.25, seed=35)
        for i, query in enumerate(queries):
            action = i % 4
            if action == 1:
                rows = rng.random((40, 2)) * table.n_rows
                index.append(rows)
                mirror.append(rows)
            elif action == 2 and mirror.columns[0].shape[0] > 100:
                victim = int(rng.integers(0, mirror.columns[0].shape[0]))
                index.delete([victim])
                mirror.deleted.add(victim)
            mirror.check(index, query)

    def test_invalid_merge_fraction(self):
        table = make_uniform_table(100, 2)
        with pytest.raises(InvalidParameterError):
            AppendableAdaptiveKDTree(table, merge_fraction=0.0)
