"""Cost model: Table I formulas, delta inversions, calibration."""

import pytest

from repro import CostModel, InvalidParameterError, MachineProfile
from repro.core.metrics import QueryStats


@pytest.fixture
def model():
    return CostModel(MachineProfile.deterministic(), n_rows=100_000, n_dims=4)


class TestMachineProfile:
    def test_deterministic_is_fixed(self):
        assert MachineProfile.deterministic() == MachineProfile.deterministic()

    def test_deterministic_ordering(self):
        profile = MachineProfile.deterministic()
        # Random accesses cost more than sequential ones, writes more than
        # reads — the ordering every formula in the paper assumes.
        assert profile.random_access > profile.seq_read
        assert profile.seq_write >= profile.seq_read
        assert profile.random_write > profile.seq_read

    def test_calibrate_returns_positive_costs(self):
        profile = MachineProfile.calibrate(n_elements=50_000, repeats=1)
        assert profile.seq_read > 0
        assert profile.seq_write > 0
        assert profile.random_access > 0
        assert profile.random_write > 0


class TestFormulas:
    def test_rejects_bad_sizes(self):
        profile = MachineProfile.deterministic()
        with pytest.raises(InvalidParameterError):
            CostModel(profile, 0, 4)
        with pytest.raises(InvalidParameterError):
            CostModel(profile, 100, 0)

    def test_scan_linear(self, model):
        assert model.scan_seconds(2_000) == pytest.approx(
            2 * model.scan_seconds(1_000)
        )

    def test_full_scan_grows_with_candidates(self, model):
        assert model.full_scan_seconds(0.9) > model.full_scan_seconds(0.1)

    def test_creation_lookup_grows_with_alpha(self, model):
        assert model.creation_lookup_seconds(0.8) > model.creation_lookup_seconds(0.2)

    def test_creation_indexing_linear_in_delta(self, model):
        quarter = model.creation_indexing_seconds(0.25)
        half = model.creation_indexing_seconds(0.5)
        # Linear up to the constant (d-1)*phi term.
        fixed = (model.n_dims - 1) * model.profile.random_access
        assert (half - fixed) == pytest.approx(2 * (quarter - fixed))

    def test_creation_base_scan_shrinks(self, model):
        assert model.creation_base_scan_seconds(0.5, 0.2) < (
            model.creation_base_scan_seconds(0.0, 0.0)
        )

    def test_creation_base_scan_never_negative(self, model):
        assert model.creation_base_scan_seconds(0.9, 0.5) == 0.0

    def test_creation_total_is_sum(self, model):
        total = model.creation_total_seconds(alpha=0.3, delta=0.2, rho=0.1)
        parts = (
            model.creation_lookup_seconds(0.3)
            + model.creation_indexing_seconds(0.2)
            + model.creation_base_scan_seconds(0.1, 0.2)
        )
        assert total == pytest.approx(parts)

    def test_refinement_swap_scales_with_dims(self):
        profile = MachineProfile.deterministic()
        narrow = CostModel(profile, 100_000, 2)
        wide = CostModel(profile, 100_000, 8)
        assert wide.refinement_swap_seconds(0.5) == pytest.approx(
            4 * narrow.refinement_swap_seconds(0.5)
        )

    def test_refinement_total_includes_lookup(self, model):
        with_height = model.refinement_total_seconds(10, 0.1, 0.1)
        without = model.refinement_total_seconds(0, 0.1, 0.1)
        assert with_height > without


class TestDeltaInversions:
    def test_creation_roundtrip(self, model):
        budget = model.creation_indexing_seconds(0.37)
        assert model.delta_for_creation_budget(budget) == pytest.approx(
            0.37, rel=0.05
        )

    def test_refinement_roundtrip(self, model):
        budget = model.refinement_swap_seconds(0.41)
        assert model.delta_for_refinement_budget(budget) == pytest.approx(0.41)

    def test_zero_budget_zero_delta(self, model):
        assert model.delta_for_creation_budget(0.0) == 0.0
        assert model.delta_for_refinement_budget(-1.0) == 0.0

    def test_delta_capped_at_one(self, model):
        assert model.delta_for_creation_budget(1e9) == 1.0
        assert model.delta_for_refinement_budget(1e9) == 1.0

    def test_rows_conversions(self, model):
        budget = model.creation_indexing_seconds(0.5)
        rows = model.rows_for_creation_budget(budget)
        assert rows == pytest.approx(0.5 * model.n_rows, rel=0.05)


class TestSecondsOf:
    def test_prices_every_counter(self, model):
        profile = model.profile
        stats = QueryStats(scanned=100, copied=50, swapped=20, lookup_nodes=5)
        expected = (
            100 * profile.seq_read
            + 50 * (profile.seq_read + profile.seq_write)
            + 20 * 2 * profile.random_write
            + 5 * profile.random_access
        )
        assert model.seconds_of(stats) == pytest.approx(expected)

    def test_empty_stats_cost_zero(self, model):
        assert model.seconds_of(QueryStats()) == 0.0

    def test_repr(self, model):
        assert "N=100000" in repr(model)
