"""QueryStats and the phase timers."""

import time

import pytest

from repro.core.metrics import PHASES, PhaseTimer, QueryStats


class TestQueryStats:
    def test_defaults(self):
        stats = QueryStats()
        assert stats.seconds == 0.0
        assert stats.work == 0
        assert set(stats.phase_seconds) == set(PHASES)

    def test_work_is_sum_of_counters(self):
        stats = QueryStats(scanned=10, copied=5, swapped=3, lookup_nodes=2)
        assert stats.work == 20

    def test_indexing_work(self):
        stats = QueryStats(scanned=10, copied=5, swapped=3)
        assert stats.indexing_work == 8

    def test_merge_accumulates(self):
        first = QueryStats(scanned=1, copied=2, swapped=3, lookup_nodes=4)
        first.seconds = 1.0
        first.phase_seconds["scan"] = 0.5
        second = QueryStats(scanned=10, nodes_created=7)
        second.seconds = 2.0
        second.phase_seconds["scan"] = 0.25
        first.merge(second)
        assert first.seconds == 3.0
        assert first.scanned == 11
        assert first.nodes_created == 7
        assert first.phase_seconds["scan"] == 0.75

    def test_repr_contains_counts(self):
        stats = QueryStats(scanned=42)
        assert "scanned=42" in repr(stats)

    def test_merge_carries_converged(self):
        first = QueryStats()
        second = QueryStats(converged=True)
        first.merge(second)
        assert first.converged is True
        # OR semantics: merging a non-converged record never clears it.
        first.merge(QueryStats())
        assert first.converged is True

    def test_merge_accumulates_delta_used(self):
        first = QueryStats(delta_used=0.2)
        first.merge(QueryStats(delta_used=0.1))
        assert first.delta_used == pytest.approx(0.3)

    def test_merge_delta_used_one_sided(self):
        # A missing side counts as 0 once either side is progressive.
        first = QueryStats(delta_used=None)
        first.merge(QueryStats(delta_used=0.4))
        assert first.delta_used == pytest.approx(0.4)
        second = QueryStats(delta_used=0.4)
        second.merge(QueryStats(delta_used=None))
        assert second.delta_used == pytest.approx(0.4)

    def test_merge_delta_used_stays_none_for_non_progressive(self):
        first = QueryStats()
        first.merge(QueryStats())
        assert first.delta_used is None


class TestPhaseTimer:
    def test_accumulates_into_phase(self):
        stats = QueryStats()
        with PhaseTimer(stats, "scan"):
            time.sleep(0.002)
        assert stats.phase_seconds["scan"] > 0.0
        assert stats.phase_seconds["adaptation"] == 0.0

    def test_multiple_entries_accumulate(self):
        stats = QueryStats()
        for _ in range(3):
            with PhaseTimer(stats, "adaptation"):
                time.sleep(0.001)
        assert stats.phase_seconds["adaptation"] >= 0.003

    def test_unknown_phase_rejected(self):
        with pytest.raises(KeyError):
            PhaseTimer(QueryStats(), "nonsense")

    def test_timer_survives_exceptions(self):
        stats = QueryStats()
        with pytest.raises(RuntimeError):
            with PhaseTimer(stats, "scan"):
                raise RuntimeError("boom")
        assert stats.phase_seconds["scan"] >= 0.0

    def test_time_accumulates_when_body_raises(self):
        stats = QueryStats()
        with pytest.raises(ValueError):
            with PhaseTimer(stats, "adaptation"):
                time.sleep(0.002)
                raise ValueError("boom")
        assert stats.phase_seconds["adaptation"] >= 0.002

    def test_reentrant_use_raises(self):
        stats = QueryStats()
        timer = PhaseTimer(stats, "scan")
        with timer:
            with pytest.raises(RuntimeError, match="already active"):
                timer.__enter__()
        # The failed re-entry must not have corrupted the timer: a fresh
        # sequential activation of the same instance still works.
        with timer:
            pass

    def test_sequential_reuse_accumulates(self):
        stats = QueryStats()
        timer = PhaseTimer(stats, "scan")
        with timer:
            time.sleep(0.001)
        with timer:
            time.sleep(0.001)
        assert stats.phase_seconds["scan"] >= 0.002
