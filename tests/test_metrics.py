"""QueryStats and the phase timers."""

import time

import pytest

from repro.core.metrics import PHASES, PhaseTimer, QueryStats


class TestQueryStats:
    def test_defaults(self):
        stats = QueryStats()
        assert stats.seconds == 0.0
        assert stats.work == 0
        assert set(stats.phase_seconds) == set(PHASES)

    def test_work_is_sum_of_counters(self):
        stats = QueryStats(scanned=10, copied=5, swapped=3, lookup_nodes=2)
        assert stats.work == 20

    def test_indexing_work(self):
        stats = QueryStats(scanned=10, copied=5, swapped=3)
        assert stats.indexing_work == 8

    def test_merge_accumulates(self):
        first = QueryStats(scanned=1, copied=2, swapped=3, lookup_nodes=4)
        first.seconds = 1.0
        first.phase_seconds["scan"] = 0.5
        second = QueryStats(scanned=10, nodes_created=7)
        second.seconds = 2.0
        second.phase_seconds["scan"] = 0.25
        first.merge(second)
        assert first.seconds == 3.0
        assert first.scanned == 11
        assert first.nodes_created == 7
        assert first.phase_seconds["scan"] == 0.75

    def test_repr_contains_counts(self):
        stats = QueryStats(scanned=42)
        assert "scanned=42" in repr(stats)


class TestPhaseTimer:
    def test_accumulates_into_phase(self):
        stats = QueryStats()
        with PhaseTimer(stats, "scan"):
            time.sleep(0.002)
        assert stats.phase_seconds["scan"] > 0.0
        assert stats.phase_seconds["adaptation"] == 0.0

    def test_multiple_entries_accumulate(self):
        stats = QueryStats()
        for _ in range(3):
            with PhaseTimer(stats, "adaptation"):
                time.sleep(0.001)
        assert stats.phase_seconds["adaptation"] >= 0.003

    def test_unknown_phase_rejected(self):
        with pytest.raises(KeyError):
            PhaseTimer(QueryStats(), "nonsense")

    def test_timer_survives_exceptions(self):
        stats = QueryStats()
        with pytest.raises(RuntimeError):
            with PhaseTimer(stats, "scan"):
                raise RuntimeError("boom")
        assert stats.phase_seconds["scan"] >= 0.0
