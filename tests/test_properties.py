"""Property-based tests (hypothesis) for the core invariants.

The master invariant — every index answers every query exactly like a full
scan, at every point of its incremental construction — is exercised over
random data distributions, query boxes, deltas, and thresholds.  The
pausable partition is exercised over arbitrary pause schedules.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import (
    AdaptiveKDTree,
    AverageKDTree,
    GreedyProgressiveKDTree,
    MedianKDTree,
    ProgressiveKDTree,
    Quasii,
    RangeQuery,
    SFCCracking,
    Table,
)
from repro.baselines.cracking1d import CrackerColumn
from repro.core.partition import IncrementalPartition, stable_partition
from tests.conftest import reference_answer

INDEX_CLASSES = [
    AdaptiveKDTree,
    ProgressiveKDTree,
    GreedyProgressiveKDTree,
    AverageKDTree,
    MedianKDTree,
    Quasii,
    SFCCracking,
]


@st.composite
def table_and_queries(draw):
    """Random small table (varied distributions) plus random query boxes."""
    n_rows = draw(st.integers(min_value=5, max_value=400))
    n_dims = draw(st.integers(min_value=1, max_value=4))
    seed = draw(st.integers(min_value=0, max_value=2**16))
    rng = np.random.default_rng(seed)
    kind = draw(st.sampled_from(["uniform", "integer", "skewed", "mixed"]))
    if kind == "uniform":
        matrix = rng.random((n_rows, n_dims)) * 100
    elif kind == "integer":
        matrix = rng.integers(0, 10, size=(n_rows, n_dims)).astype(float)
    elif kind == "skewed":
        matrix = rng.lognormal(0, 2, size=(n_rows, n_dims))
    else:
        matrix = rng.random((n_rows, n_dims)) * 100
        matrix[:, 0] = np.round(matrix[:, 0] / 20)  # heavy duplicates
    table = Table.from_matrix(matrix)
    minimums, maximums = table.minimums(), table.maximums()
    n_queries = draw(st.integers(min_value=1, max_value=8))
    queries = []
    for _ in range(n_queries):
        lows, highs = [], []
        for dim in range(n_dims):
            a = rng.uniform(minimums[dim] - 1, maximums[dim] + 1)
            b = rng.uniform(minimums[dim] - 1, maximums[dim] + 1)
            lows.append(min(a, b))
            highs.append(max(a, b))
        queries.append(RangeQuery(lows, highs))
    return table, queries


@settings(max_examples=25, deadline=None)
@given(data=table_and_queries(), class_index=st.integers(0, len(INDEX_CLASSES) - 1))
def test_master_invariant_all_indexes(data, class_index):
    table, queries = data
    cls = INDEX_CLASSES[class_index]
    if cls is ProgressiveKDTree or cls is GreedyProgressiveKDTree:
        index = cls(table, delta=0.3, size_threshold=8)
    elif cls is SFCCracking:
        index = cls(table)
    else:
        index = cls(table, size_threshold=8)
    for query in queries:
        got = np.sort(index.query(query).row_ids)
        want = reference_answer(table, query)
        assert np.array_equal(got, want)


@settings(max_examples=30, deadline=None)
@given(
    keys=st.lists(
        st.floats(min_value=-1e6, max_value=1e6, allow_nan=False), min_size=1,
        max_size=300,
    ),
    pivot=st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
    schedule_seed=st.integers(0, 2**16),
)
def test_incremental_partition_any_schedule(keys, pivot, schedule_seed):
    array = np.array(keys)
    rowids = np.arange(array.size, dtype=np.int64)
    original = array.copy()
    job = IncrementalPartition([array, rowids], 0, array.size, 0, pivot)
    rng = np.random.default_rng(schedule_seed)
    while not job.done:
        assert job.advance(int(rng.integers(1, 20))) > 0
    assert (array[: job.split] <= pivot).all()
    assert (array[job.split :] > pivot).all()
    # Same multiset of rows, rows still aligned with their ids.
    assert np.array_equal(np.sort(array), np.sort(original))
    assert np.array_equal(array, original[rowids])


@settings(max_examples=30, deadline=None)
@given(
    keys=st.lists(
        st.floats(min_value=-1e3, max_value=1e3, allow_nan=False), min_size=1,
        max_size=200,
    ),
    pivot=st.floats(min_value=-1e3, max_value=1e3, allow_nan=False),
)
def test_stable_partition_matches_incremental_split(keys, pivot):
    first = np.array(keys)
    second = first.copy()
    split_stable = stable_partition([first], 0, first.size, 0, pivot)
    job = IncrementalPartition([second], 0, second.size, 0, pivot)
    job.run_to_completion()
    assert split_stable == job.split
    assert np.array_equal(np.sort(first), np.sort(second))


@settings(max_examples=25, deadline=None)
@given(
    keys=st.lists(st.integers(0, 100), min_size=1, max_size=300),
    bounds=st.lists(
        st.tuples(st.integers(-10, 110), st.integers(-10, 110)),
        min_size=1,
        max_size=10,
    ),
)
def test_cracker_column_ranges(keys, bounds):
    array = np.array(keys, dtype=np.float64)
    cracker = CrackerColumn(array)
    for a, b in bounds:
        low, high = float(min(a, b)), float(max(a, b))
        got = np.sort(cracker.range_rowids(low, high))
        want = np.flatnonzero((array > low) & (array <= high))
        assert np.array_equal(got, want)
    cracker.validate()


@settings(max_examples=20, deadline=None)
@given(data=table_and_queries())
def test_progressive_tree_always_validates(data):
    table, queries = data
    index = ProgressiveKDTree(table, delta=0.4, size_threshold=8)
    for query in queries:
        index.query(query)
        if index.tree is not None:
            index.tree.validate(index.index_table.columns)


@settings(max_examples=20, deadline=None)
@given(data=table_and_queries())
def test_adaptive_tree_always_validates(data):
    table, queries = data
    index = AdaptiveKDTree(table, size_threshold=8)
    for query in queries:
        index.query(query)
        index.tree.validate(index.index_table.columns)


@settings(max_examples=20, deadline=None)
@given(data=table_and_queries())
def test_progressive_rowids_stay_a_permutation(data):
    table, queries = data
    index = ProgressiveKDTree(table, delta=1.0, size_threshold=8)
    index.query(queries[0])
    rowids = np.sort(index.index_table.rowids)
    assert np.array_equal(rowids, np.arange(table.n_rows))
