"""The kernel backend registry, dispatch, and leaf zone maps.

Covers the pluggable-kernel contract end to end: registry/probe
behaviour (unknown names raise, unavailable backends fall back
silently), the session/harness selection hooks, and the zone-map
shortcuts — pruning and containment must change *work counters only*,
never answers, and containment must hand out an independent copy of the
rowid range (a view would be corrupted by later partitioning).
"""

import numpy as np
import pytest

from repro import ExplorationSession, RangeQuery, kernels
from repro.baselines.full_kdtree import AverageKDTree
from repro.bench.harness import run_workload
from repro.core.adaptive_kdtree import AdaptiveKDTree
from repro.core.metrics import QueryStats
from repro.core.progressive_kdtree import ProgressiveKDTree
from repro.core.table import Table
from repro.errors import InvalidParameterError
from repro.invariants import structural_errors, zone_map_errors
from repro.workloads.data import clustered_table
from repro.workloads.patterns import make_synthetic_workload, zoom_queries


@pytest.fixture
def small_uniform_workload():
    return make_synthetic_workload(
        "uniform", 2000, 3, 15, selectivity=0.02, seed=7
    )


@pytest.fixture(autouse=True)
def _restore_active_backend():
    """The dispatch is process-global; leave it as we found it."""
    previous = kernels.active_name()
    yield
    kernels.use(previous)


# ------------------------------------------------------------------ registry

def test_default_backend_is_fused_numpy():
    assert kernels.DEFAULT_BACKEND == "numpy"
    assert "numpy" in kernels.available_backends()
    assert "reference" in kernels.available_backends()
    assert "numba" in kernels.registered_backends()


def test_unknown_backend_raises():
    with pytest.raises(InvalidParameterError):
        kernels.use("vectorwise")
    with pytest.raises(InvalidParameterError):
        kernels.get_backend("vectorwise")


def test_unavailable_backend_falls_back_silently():
    activated = kernels.use("numba")
    if "numba" in kernels.available_backends():
        assert activated == "numba"
    else:
        assert activated == kernels.DEFAULT_BACKEND
        assert kernels.active_name() == kernels.DEFAULT_BACKEND


def test_use_returns_and_activates():
    assert kernels.use("reference") == "reference"
    assert kernels.active_name() == "reference"
    assert kernels.active_backend() is kernels.get_backend("reference")


def test_get_backend_caches_instances():
    assert kernels.get_backend("numpy") is kernels.get_backend("numpy")


def test_session_kernels_option():
    session = ExplorationSession(kernels="reference")
    assert session.kernels == "reference"
    assert kernels.active_name() == "reference"
    rng = np.random.default_rng(0)
    session.register("t", {"x": rng.random(500), "y": rng.random(500)})
    result = session.query("t", x=(0.1, 0.6), y=(0.2, 0.9))
    x = session.fetch("t", "x", result.row_ids)
    y = session.fetch("t", "y", result.row_ids)
    assert ((x > 0.1) & (x <= 0.6) & (y > 0.2) & (y <= 0.9)).all()


def test_session_rejects_unknown_kernels():
    with pytest.raises(InvalidParameterError):
        ExplorationSession(kernels="vectorwise")


def test_harness_kernels_option(small_uniform_workload):
    run = run_workload(
        "AKD",
        small_uniform_workload,
        size_threshold=64,
        validate=True,
        kernels="reference",
    )
    assert kernels.active_name() == "reference"
    assert run.n_queries == len(small_uniform_workload.queries)


# ------------------------------------------------------------------ zone maps

def _zoom_setup(n_rows=6000, n_queries=25):
    table = clustered_table(n_rows, 3, seed=11)
    mirror = Table.from_matrix(
        np.column_stack([table.column(dim) for dim in range(3)])
    )
    return table, mirror, zoom_queries(table, n_queries, 0.01)


def _full_scan_reference(mirror, query):
    columns = mirror.columns()
    return np.sort(
        kernels.get_backend("reference").range_scan(
            columns, 0, mirror.n_rows, query, QueryStats()
        )
    )


@pytest.mark.parametrize(
    "factory",
    [
        lambda table: AdaptiveKDTree(table, size_threshold=128),
        lambda table: ProgressiveKDTree(table, size_threshold=128, delta=0.3),
        lambda table: AverageKDTree(table, size_threshold=128),
    ],
    ids=["AKD", "PKD", "AvgKD"],
)
def test_zone_shortcuts_change_counters_not_answers(factory):
    """The Fig. 6 zoom workload over clustered data: the synopsis fires
    (nonzero pruned+contained across the indexes) while every answer
    stays equal to the full-scan reference, and the zone invariants
    (I7/I8) hold after every query."""
    table, mirror, queries = _zoom_setup()
    index = factory(table)
    fired = 0
    for query in queries:
        result = index.query(query)
        assert np.array_equal(
            np.sort(result.row_ids), _full_scan_reference(mirror, query)
        )
        fired += result.stats.pruned + result.stats.contained
        assert result.stats.pruned >= 0 and result.stats.contained >= 0
        assert structural_errors(index) == []
    state = index.debug_state()
    assert zone_map_errors(state) == []
    # Every leaf of a seeded tree carries a zone map.
    leaves = list(state.tree.iter_leaves())
    assert leaves and all(leaf.zone_lo is not None for leaf in leaves)


def test_zoom_workload_fires_zone_shortcuts():
    """At least one index must actually use the synopsis on the zoom
    workload — guards against the shortcuts silently never triggering."""
    table, mirror, queries = _zoom_setup()
    total = 0
    for factory in (
        lambda t: AdaptiveKDTree(t, size_threshold=128),
        lambda t: ProgressiveKDTree(t, size_threshold=128, delta=0.3),
        lambda t: AverageKDTree(t, size_threshold=128),
    ):
        index = factory(table)
        for query in queries:
            stats = index.query(query).stats
            total += stats.pruned + stats.contained
    assert total > 0


def test_containment_returns_an_independent_copy():
    """A contained piece's answer must not alias the index's rowid
    column: later reorganisation would silently rewrite the caller's
    result array."""
    rng = np.random.default_rng(3)
    table = Table.from_matrix(rng.random((4000, 2)))
    index = AdaptiveKDTree(table, size_threshold=256)
    # Whole-domain query: every piece is contained once zones exist.
    everything = RangeQuery([-1.0, -1.0], [2.0, 2.0])
    result = index.query(everything)
    assert result.stats.contained > 0
    assert np.array_equal(np.sort(result.row_ids), np.arange(4000))
    snapshot = result.row_ids.copy()
    # Force heavy reorganisation afterwards.
    for _ in range(5):
        lo = float(rng.random() * 0.8)
        index.query(RangeQuery([lo, lo], [lo + 0.1, lo + 0.1]))
    assert np.array_equal(result.row_ids, snapshot)
    assert not any(
        np.shares_memory(result.row_ids, array)
        for array in index.index_table.all_arrays
    )


def test_zone_maps_survive_splits_and_stay_tight():
    """Zones tighten monotonically down the tree and never lie (I7)."""
    table = clustered_table(5000, 2, seed=4)
    index = AdaptiveKDTree(table, size_threshold=64)
    for query in zoom_queries(table, 15, 0.02):
        index.query(query)
    state = index.debug_state()
    assert zone_map_errors(state) == []
    for leaf in state.tree.iter_leaves():
        if leaf.size == 0:
            continue
        for dim in range(2):
            values = state.index_table.columns[dim][leaf.start : leaf.end]
            assert leaf.zone_lo[dim] <= float(values.min())
            assert float(values.max()) <= leaf.zone_hi[dim]


def test_zone_invariant_checker_flags_a_lying_zone():
    table = clustered_table(2000, 2, seed=9)
    index = AdaptiveKDTree(table, size_threshold=128)
    index.query(RangeQuery([0.2, 0.2], [0.6, 0.6]))
    state = index.debug_state()
    leaf = max(state.tree.iter_leaves(), key=lambda piece: piece.size)
    # Narrow the zone to just below the actual max on dim 0 (without
    # inverting it, which would trip the ordering check first): I7 fires.
    values = state.index_table.columns[0][leaf.start : leaf.end]
    assert float(values.min()) < float(values.max())
    pinched = np.nextafter(float(values.max()), -np.inf)
    leaf.zone_hi = (pinched,) + tuple(leaf.zone_hi[1:])
    assert any("outside its zone" in p for p in zone_map_errors(state))


def test_zone_checker_flags_mixed_zoning():
    table = clustered_table(2000, 2, seed=9)
    index = AdaptiveKDTree(table, size_threshold=128)
    index.query(RangeQuery([0.2, 0.2], [0.6, 0.6]))
    state = index.debug_state()
    leaves = list(state.tree.iter_leaves())
    if len(leaves) < 2:
        pytest.skip("tree did not split")
    leaves[0].zone_lo = None
    leaves[0].zone_hi = None
    assert any("all-or-nothing" in p for p in zone_map_errors(state))


# --------------------------------------------------- dispatch smoke parity

@pytest.mark.parametrize("backend_name", kernels.available_backends())
def test_all_indexes_agree_across_backends(backend_name, small_uniform_workload):
    """One end-to-end pass per backend: identical answers and identical
    deterministic work counters for a mixed adaptive/progressive run."""
    kernels.use("reference")
    want = run_workload(
        "PKD", small_uniform_workload, size_threshold=64, delta=0.3
    )
    kernels.use(backend_name)
    got = run_workload(
        "PKD", small_uniform_workload, size_threshold=64, delta=0.3
    )
    assert [s.scanned for s in got.stats] == [s.scanned for s in want.stats]
    assert [s.swapped for s in got.stats] == [s.swapped for s in want.stats]
    assert [s.result_count for s in got.stats] == [
        s.result_count for s in want.stats
    ]
    assert got.node_counts == want.node_counts
