"""Dictionary encoding of string attributes (paper future work)."""

import numpy as np
import pytest

from repro import (
    AdaptiveKDTree,
    DictionaryColumn,
    EncodedTable,
    InvalidQueryError,
    InvalidTableError,
    Table,
    encode_table,
)


@pytest.fixture
def cities():
    rng = np.random.default_rng(0)
    names = np.array(["amsterdam", "berlin", "curitiba", "delft", "eindhoven"])
    return names[rng.integers(0, 5, 300)]


class TestDictionaryColumn:
    def test_codes_are_order_preserving(self, cities):
        dictionary = DictionaryColumn(cities)
        codes = dictionary.codes
        decoded = dictionary.decode(codes.astype(int))
        order_values = np.argsort(decoded, kind="stable")
        order_codes = np.argsort(codes, kind="stable")
        assert np.array_equal(order_values, order_codes)

    def test_roundtrip(self, cities):
        dictionary = DictionaryColumn(cities)
        assert np.array_equal(
            dictionary.decode(dictionary.codes.astype(int)), cities
        )

    def test_cardinality(self, cities):
        assert DictionaryColumn(cities).cardinality == 5

    def test_encode_value(self, cities):
        dictionary = DictionaryColumn(cities)
        assert dictionary.encode_value("amsterdam") == 0
        assert dictionary.encode_value("eindhoven") == 4

    def test_encode_unknown_value(self, cities):
        with pytest.raises(InvalidQueryError):
            DictionaryColumn(cities).encode_value("zwolle")

    def test_code_floor_between_values(self, cities):
        dictionary = DictionaryColumn(cities)
        # "b..." sorts after amsterdam (code 0), before berlin (code 1).
        assert dictionary.code_floor("b") == 0.0
        assert dictionary.code_floor("zzz") == 4.0
        assert dictionary.code_floor("a") == -1.0  # below everything

    def test_translate_bounds_half_open(self, cities):
        dictionary = DictionaryColumn(cities)
        low, high = dictionary.translate_bounds("amsterdam", "delft")
        # strictly greater than amsterdam, up to and including delft.
        codes = dictionary.codes
        mask = (codes > low) & (codes <= high)
        selected = set(dictionary.decode(codes[mask].astype(int)).tolist())
        assert selected == {"berlin", "curitiba", "delft"}

    def test_rejects_empty(self):
        with pytest.raises(InvalidTableError):
            DictionaryColumn([])

    def test_rejects_matrix(self):
        with pytest.raises(InvalidTableError):
            DictionaryColumn(np.ones((2, 2)))

    def test_numeric_values_work_too(self):
        dictionary = DictionaryColumn([30, 10, 20, 10])
        assert dictionary.cardinality == 3
        assert dictionary.encode_value(10) == 0


class TestEncodeTable:
    def test_mixed_columns(self, cities):
        rng = np.random.default_rng(1)
        encoded = encode_table(
            {"city": cities, "value": rng.random(cities.shape[0])}
        )
        assert encoded.table.n_columns == 2
        assert encoded.dictionaries[0] is not None
        assert encoded.dictionaries[1] is None

    def test_indexable_end_to_end(self, cities):
        rng = np.random.default_rng(2)
        values = rng.random(cities.shape[0]) * 100
        encoded = encode_table({"city": cities, "value": values})
        index = AdaptiveKDTree(encoded.table, size_threshold=16)
        query = encoded.encode_query(
            lows=["amsterdam", 10.0], highs=["curitiba", 60.0]
        )
        result = index.query(query)
        want = np.flatnonzero(
            np.isin(cities, ["berlin", "curitiba"]) & (values > 10) & (values <= 60)
        )
        assert np.array_equal(np.sort(result.row_ids), want)

    def test_decode_rows(self, cities):
        rng = np.random.default_rng(3)
        values = rng.random(cities.shape[0])
        encoded = encode_table({"city": cities, "value": values})
        rows = encoded.decode_rows(np.array([0, 5]))
        assert rows[0][0] == cities[0]
        assert rows[0][1] == pytest.approx(values[0])

    def test_encode_query_arity_checked(self, cities):
        encoded = encode_table({"city": cities})
        with pytest.raises(InvalidQueryError):
            encoded.encode_query(["a", 1.0], ["b", 2.0])

    def test_rejects_empty_schema(self):
        with pytest.raises(InvalidTableError):
            encode_table({})

    def test_dictionary_count_validated(self, cities):
        table = Table([np.arange(3.0)])
        with pytest.raises(InvalidTableError):
            EncodedTable(table, [])
