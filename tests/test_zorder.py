"""Z-order range decomposition (BIGMIN/LITMAX-style)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import InvalidParameterError, SFCCracking
from repro.baselines.zorder import interleave_point, merge_ranges, z_query_ranges
from tests.conftest import assert_correct, make_queries, make_uniform_table


def cells_in_box(low_cells, high_cells, bits, d):
    """All Morton keys of cells inside the box (brute force)."""
    import itertools

    axes = [range(low_cells[i], high_cells[i] + 1) for i in range(d)]
    return {
        interleave_point(tuple(point), bits)
        for point in itertools.product(*axes)
    }


class TestMergeRanges:
    def test_merges_adjacent(self):
        assert merge_ranges([(0, 3), (4, 7)]) == [(0, 7)]

    def test_merges_overlapping(self):
        assert merge_ranges([(0, 5), (3, 9)]) == [(0, 9)]

    def test_keeps_gaps(self):
        assert merge_ranges([(0, 1), (5, 6)]) == [(0, 1), (5, 6)]

    def test_sorts_input(self):
        assert merge_ranges([(5, 6), (0, 1)]) == [(0, 1), (5, 6)]

    def test_empty(self):
        assert merge_ranges([]) == []


class TestDecomposition:
    def test_whole_space_is_one_range(self):
        ranges = z_query_ranges([0, 0], [15, 15], bits=4)
        assert ranges == [(0, 255)]

    def test_single_cell(self):
        ranges = z_query_ranges([3, 5], [3, 5], bits=4)
        key = interleave_point((3, 5), 4)
        assert ranges == [(key, key)]

    def test_exact_cover_small_boxes(self):
        # With a generous budget, the union of ranges must be exactly the
        # box's cells — no false candidates at all.
        rng = np.random.default_rng(0)
        for _ in range(20):
            low = rng.integers(0, 12, 2)
            high = low + rng.integers(0, 4, 2)
            ranges = z_query_ranges(low, high, bits=4, max_ranges=1024)
            covered = set()
            for z_low, z_high in ranges:
                covered.update(range(z_low, z_high + 1))
            assert covered == cells_in_box(low, high, 4, 2)

    def test_superset_under_tight_budget(self):
        rng = np.random.default_rng(1)
        for _ in range(10):
            low = rng.integers(0, 10, 2)
            high = low + rng.integers(0, 6, 2)
            ranges = z_query_ranges(low, high, bits=4, max_ranges=3)
            assert len(ranges) <= 3
            covered = set()
            for z_low, z_high in ranges:
                covered.update(range(z_low, z_high + 1))
            assert covered >= cells_in_box(low, high, 4, 2)

    def test_tighter_than_naive_range(self):
        low, high = [2, 2], [5, 5]
        bits = 4
        naive_span = (
            interleave_point((5, 5), bits) - interleave_point((2, 2), bits) + 1
        )
        ranges = z_query_ranges(low, high, bits, max_ranges=64)
        decomposed_span = sum(z_high - z_low + 1 for z_low, z_high in ranges)
        assert decomposed_span < naive_span
        assert decomposed_span == 16  # exactly the 4x4 box

    def test_empty_box(self):
        assert z_query_ranges([5], [3], bits=4) == []

    def test_three_dims(self):
        ranges = z_query_ranges([1, 1, 1], [2, 2, 2], bits=3, max_ranges=512)
        covered = set()
        for z_low, z_high in ranges:
            covered.update(range(z_low, z_high + 1))
        assert covered == cells_in_box([1, 1, 1], [2, 2, 2], 3, 3)

    def test_key_budget_validated(self):
        with pytest.raises(InvalidParameterError):
            z_query_ranges([0] * 8, [1] * 8, bits=8)
        with pytest.raises(InvalidParameterError):
            z_query_ranges([0, 0], [1], bits=4)

    @settings(max_examples=30, deadline=None)
    @given(
        low0=st.integers(0, 15), low1=st.integers(0, 15),
        extent0=st.integers(0, 15), extent1=st.integers(0, 15),
        budget=st.integers(1, 64),
    )
    def test_always_a_superset_property(self, low0, low1, extent0, extent1, budget):
        low = [low0, low1]
        high = [min(15, low0 + extent0), min(15, low1 + extent1)]
        ranges = z_query_ranges(low, high, bits=4, max_ranges=budget)
        covered = set()
        for z_low, z_high in ranges:
            covered.update(range(z_low, z_high + 1))
        assert covered >= cells_in_box(low, high, 4, 2)
        assert len(ranges) <= budget


class TestSFCWithDecomposition:
    def test_correct_answers(self):
        table = make_uniform_table(2_000, 2, seed=70)
        queries = make_queries(table, 12, width_fraction=0.15, seed=71)
        index = SFCCracking(table, decompose_ranges=32)
        assert_correct(index, table, queries)

    def test_fewer_false_candidates_than_naive(self):
        table = make_uniform_table(5_000, 2, seed=72)
        queries = make_queries(table, 10, width_fraction=0.1, seed=73)
        naive = SFCCracking(table)
        tight = SFCCracking(table, decompose_ranges=32)
        naive_scanned = sum(naive.query(q).stats.scanned for q in queries)
        tight_scanned = sum(tight.query(q).stats.scanned for q in queries)
        assert tight_scanned < naive_scanned / 2

    def test_decompose_param_validated(self):
        table = make_uniform_table(100, 2)
        with pytest.raises(InvalidParameterError):
            SFCCracking(table, decompose_ranges=-1)


class TestInterleaveConsistency:
    def test_matches_vectorised_morton(self):
        """interleave_point (scalar) must agree with morton_encode
        (vectorised) bit for bit."""
        import itertools

        from repro.baselines.sfc_cracking import morton_encode

        cells = np.array(
            list(itertools.product(range(4), range(4), range(4)))
        ).T.astype(np.uint64)
        vectorised = morton_encode(cells, bits=2)
        for position in range(cells.shape[1]):
            point = tuple(int(cells[dim, position]) for dim in range(3))
            assert interleave_point(point, 2) == int(vectorised[position])
