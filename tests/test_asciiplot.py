"""ASCII chart rendering."""

import pytest

from repro.bench.asciiplot import line_chart


class TestLineChart:
    def test_basic_render(self):
        chart = line_chart([("up", [1.0, 2.0, 3.0, 4.0])], width=20, height=6)
        assert "o" in chart
        assert "o=up" in chart

    def test_two_series_distinct_glyphs(self):
        chart = line_chart(
            [("a", [1, 2, 3]), ("b", [3, 2, 1])], width=20, height=6
        )
        assert "o=a" in chart and "x=b" in chart
        assert "o" in chart and "x" in chart

    def test_none_values_skipped(self):
        chart = line_chart([("gaps", [1.0, None, 3.0])], width=10, height=4)
        assert "o" in chart

    def test_empty_series(self):
        assert line_chart([("nothing", [])]) == "(no data to plot)"

    def test_all_none(self):
        assert line_chart([("nope", [None, None])]) == "(no data to plot)"

    def test_log_scale_skips_nonpositive(self):
        chart = line_chart(
            [("mixed", [0.0, 1.0, 10.0, 100.0])], logy=True, width=20, height=6
        )
        assert "o" in chart

    def test_hline_reference(self):
        chart = line_chart(
            [("s", [1.0, 2.0, 3.0])],
            hline=2.0,
            hline_label="tau",
            width=20,
            height=8,
        )
        assert "-" * 10 in chart
        assert "tau" in chart

    def test_axis_labels(self):
        chart = line_chart(
            [("s", [1, 2])], y_label="seconds", x_label="query", width=10, height=4
        )
        assert "[y: seconds]" in chart
        assert "[x: query]" in chart

    def test_constant_series_does_not_crash(self):
        chart = line_chart([("flat", [5.0] * 10)], width=15, height=5)
        assert "o" in chart

    def test_shape_dimensions(self):
        chart = line_chart([("s", [1, 2, 3])], width=30, height=10)
        data_rows = [line for line in chart.splitlines() if "|" in line]
        assert len(data_rows) == 10

    def test_extremes_on_top_and_bottom_rows(self):
        chart = line_chart([("s", [0.0, 100.0])], width=10, height=5)
        rows = [line for line in chart.splitlines() if "|" in line]
        assert "o" in rows[0]  # the maximum lands on the top row
        assert "o" in rows[-1]  # the minimum on the bottom row
