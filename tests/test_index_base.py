"""BaseIndex plumbing: QueryResult, IndexTable, validation."""

import numpy as np
import pytest

from repro import (
    AdaptiveKDTree,
    FullScan,
    IndexTable,
    InvalidQueryError,
    RangeQuery,
    Table,
)
from repro.core.kdtree import KDTree
from repro.core.metrics import QueryStats
from tests.conftest import make_queries, make_uniform_table


class TestQueryResult:
    def test_count_and_checksum(self, small_table, small_queries):
        result = FullScan(small_table).query(small_queries[0])
        assert result.count == result.row_ids.size
        assert result.checksum() == int(result.row_ids.sum())

    def test_empty_checksum(self, small_table):
        query = RangeQuery([0.0] * 3, [0.0] * 3)
        result = FullScan(small_table).query(query)
        assert result.count == 0
        assert result.checksum() == 0

    def test_sorted_ids(self, small_table, small_queries):
        result = AdaptiveKDTree(small_table, size_threshold=64).query(
            small_queries[0]
        )
        ids = result.sorted_ids()
        assert np.array_equal(ids, np.sort(ids))

    def test_stats_result_count_synced(self, small_table, small_queries):
        result = FullScan(small_table).query(small_queries[0])
        assert result.stats.result_count == result.count

    def test_repr(self, small_table, small_queries):
        assert "rows" in repr(FullScan(small_table).query(small_queries[0]))


class TestIndexTable:
    def test_copy_of_counts_work(self, small_table):
        stats = QueryStats()
        index_table = IndexTable.copy_of(small_table, stats)
        assert stats.copied == small_table.n_rows * 4  # 3 cols + rowids
        assert index_table.n_rows == small_table.n_rows

    def test_copy_is_independent(self, small_table):
        index_table = IndexTable.copy_of(small_table)
        index_table.columns[0][0] = -1.0
        assert small_table.column(0)[0] != -1.0

    def test_allocate_shapes(self):
        index_table = IndexTable.allocate(100, 3)
        assert len(index_table.columns) == 3
        assert index_table.rowids.shape == (100,)

    def test_all_arrays_includes_rowids(self, small_table):
        index_table = IndexTable.copy_of(small_table)
        arrays = index_table.all_arrays
        assert len(arrays) == 4
        assert arrays[-1] is index_table.rowids

    def test_scan_piece_maps_rowids(self, small_table):
        from repro.core.kdtree import PieceMatch
        from repro.core.node import Piece

        index_table = IndexTable.copy_of(small_table)
        # Shuffle rows to make the mapping non-trivial.
        rng = np.random.default_rng(0)
        order = rng.permutation(small_table.n_rows)
        for position, column in enumerate(index_table.columns):
            index_table.columns[position] = column[order]
        index_table.rowids = index_table.rowids[order]
        piece = Piece(0, small_table.n_rows)
        match = PieceMatch(
            piece, np.ones(3, dtype=bool), np.ones(3, dtype=bool)
        )
        query = make_queries(small_table, 1, seed=9)[0]
        stats = QueryStats()
        got = np.sort(index_table.scan_piece(match, query, stats))
        from tests.conftest import reference_answer

        assert np.array_equal(got, reference_answer(small_table, query))


class TestBaseIndexContract:
    def test_query_counts_queries(self, small_table, small_queries):
        index = FullScan(small_table)
        for query in small_queries[:3]:
            index.query(query)
        assert index.queries_executed == 3

    def test_seconds_populated(self, small_table, small_queries):
        result = FullScan(small_table).query(small_queries[0])
        assert result.stats.seconds > 0

    def test_wrong_arity_rejected_before_execution(self, small_table):
        index = AdaptiveKDTree(small_table, size_threshold=64)
        with pytest.raises(InvalidQueryError):
            index.query(RangeQuery([0.0, 0.0], [1.0, 1.0]))
        assert index.index_table is None  # nothing happened

    def test_repr(self, small_table):
        assert "N=2000" in repr(FullScan(small_table))


class TestDegenerateTables:
    def test_single_row_table(self):
        table = Table([np.array([5.0]), np.array([7.0])])
        index = AdaptiveKDTree(table, size_threshold=4)
        hit = index.query(RangeQuery([4.0, 6.0], [6.0, 8.0]))
        assert hit.count == 1
        miss = index.query(RangeQuery([5.0, 6.0], [6.0, 8.0]))
        assert miss.count == 0  # low bound is exclusive

    def test_two_identical_rows(self):
        table = Table([np.array([1.0, 1.0])])
        index = AdaptiveKDTree(table, size_threshold=1)
        result = index.query(RangeQuery([0.0], [1.0]))
        assert result.count == 2

    def test_boundary_values_half_open(self):
        table = Table([np.array([1.0, 2.0, 3.0])])
        index = FullScan(table)
        assert index.query(RangeQuery([1.0], [2.0])).count == 1  # only 2.0
        assert index.query(RangeQuery([0.0], [3.0])).count == 3

    def test_all_indexes_agree_on_single_column(self):
        from repro import AverageKDTree, ProgressiveKDTree, Quasii

        table = make_uniform_table(500, 1, seed=60)
        queries = make_queries(table, 8, width_fraction=0.2, seed=61)
        reference = FullScan(table)
        answers = [np.sort(reference.query(q).row_ids) for q in queries]
        for cls in (AdaptiveKDTree, ProgressiveKDTree, AverageKDTree, Quasii):
            index = cls(table, size_threshold=16) if cls is not ProgressiveKDTree else cls(
                table, delta=0.4, size_threshold=16
            )
            for query, want in zip(queries, answers):
                assert np.array_equal(np.sort(index.query(query).row_ids), want)
