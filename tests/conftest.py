"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

from typing import List

import numpy as np
import pytest

from repro import FullScan, RangeQuery, Table
from repro.core.metrics import QueryStats
from repro.core.scan import full_scan


def make_uniform_table(n_rows: int, n_dims: int, seed: int = 0) -> Table:
    rng = np.random.default_rng(seed)
    return Table.from_matrix(rng.random((n_rows, n_dims)) * n_rows)


def make_queries(
    table: Table, n_queries: int, width_fraction: float = 0.1, seed: int = 1
) -> List[RangeQuery]:
    rng = np.random.default_rng(seed)
    minimums = table.minimums()
    spans = table.maximums() - minimums
    widths = spans * width_fraction
    queries = []
    for _ in range(n_queries):
        lows = minimums + rng.random(table.n_columns) * (spans - widths)
        queries.append(RangeQuery(lows, lows + widths))
    return queries


def reference_answer(table: Table, query: RangeQuery) -> np.ndarray:
    """Ground truth row ids via an uninstrumented full scan."""
    return np.sort(full_scan(table.columns(), query, QueryStats()))


def assert_correct(index, table: Table, queries) -> None:
    """The master invariant: the index answers exactly like a full scan,
    at every point of its incremental construction."""
    for position, query in enumerate(queries):
        got = np.sort(index.query(query).row_ids)
        want = reference_answer(table, query)
        assert np.array_equal(got, want), (
            f"{type(index).__name__} wrong on query {position}: "
            f"{got.size} rows, expected {want.size}"
        )


@pytest.fixture
def small_table() -> Table:
    return make_uniform_table(2_000, 3, seed=7)


@pytest.fixture
def small_queries(small_table) -> List[RangeQuery]:
    return make_queries(small_table, 20, width_fraction=0.15, seed=8)


@pytest.fixture
def duplicate_table() -> Table:
    """A table full of duplicate values (integer grid data)."""
    rng = np.random.default_rng(3)
    return Table.from_matrix(rng.integers(0, 20, size=(1_500, 3)).astype(float))


@pytest.fixture
def constant_column_table() -> Table:
    """One constant column among two varying ones (degenerate splits)."""
    rng = np.random.default_rng(4)
    n = 1_200
    return Table(
        [rng.random(n) * 100, np.full(n, 42.0), rng.random(n) * 100]
    )
