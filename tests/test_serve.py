"""The multi-session index server (:mod:`repro.serve`).

Layer by layer: protocol framing and deterministic table specs, the
writer-preferring snapshot lock, admission caps, the cross-tenant
refinement scheduler, the blocking server core (queries checked against
the serial oracle), the concurrent-reader snapshot guarantee, and the
full socket round trip through :class:`ServerThread` + `ServeClient`.
"""

from __future__ import annotations

import threading
import time

import numpy as np
import pytest

from repro import kernels
from repro.core.metrics import QueryStats
from repro.errors import InvalidTableError
from repro.serve import (
    AdmissionCaps,
    AdmissionControl,
    AdmissionError,
    AdmissionRejected,
    IndexServer,
    PieceSnapshotLock,
    RefinementScheduler,
    ServeClient,
    ServeClientError,
    ServerThread,
    TableSpec,
    answer_checksum,
)
from repro.serve.protocol import (
    decode_frame,
    encode_frame,
    error_response,
    ok_response,
)


def oracle_answer(spec: TableSpec, bounds):
    """(count, checksum) ground truth via the reference kernel."""
    columns_by_name = spec.build_columns()
    group = sorted(bounds)
    columns = [np.asarray(columns_by_name[name], dtype=float) for name in group]
    from repro.core.query import RangeQuery

    query = RangeQuery(
        [bounds[name][0] for name in group],
        [bounds[name][1] for name in group],
    )
    positions = kernels.get_backend("reference").range_scan(
        columns, 0, int(columns[0].shape[0]), query, QueryStats()
    )
    return int(positions.size), answer_checksum(positions)


# ------------------------------------------------------------------ protocol


class TestProtocol:
    def test_frame_round_trip(self):
        payload = {"op": "query", "id": 3, "bounds": {"c0": [1.5, 2.5]}}
        assert decode_frame(encode_frame(payload)) == payload

    def test_frames_are_newline_terminated(self):
        assert encode_frame({"op": "hello"}).endswith(b"\n")

    def test_embedded_newlines_stay_inside_one_frame(self):
        payload = {"detail": "line one\nline two"}
        frame = encode_frame(payload)
        assert frame.count(b"\n") == 1  # only the terminator
        assert decode_frame(frame) == payload

    def test_ok_and_error_echo_request_id(self):
        request = {"op": "stats", "id": 41}
        assert ok_response(request)["id"] == 41
        error = error_response(request, "boom", "details", retry=True)
        assert error["id"] == 41
        assert error["retry"] is True
        assert error["ok"] is False

    def test_checksum_is_order_invariant(self):
        forward = np.arange(100, dtype=np.int64)
        shuffled = forward.copy()
        np.random.default_rng(0).shuffle(shuffled)
        assert answer_checksum(forward) == answer_checksum(shuffled)
        assert answer_checksum(forward) != answer_checksum(forward[:-1])


class TestTableSpec:
    def test_build_is_deterministic(self):
        a = TableSpec("t", "uniform", 500, 3, seed=9).build_columns()
        b = TableSpec("t", "uniform", 500, 3, seed=9).build_columns()
        assert list(a) == ["c0", "c1", "c2"]
        for name in a:
            assert np.array_equal(a[name], b[name])

    def test_seed_and_kind_change_the_data(self):
        base = TableSpec("t", "uniform", 300, 2, seed=0).build_columns()
        reseeded = TableSpec("t", "uniform", 300, 2, seed=1).build_columns()
        skewed = TableSpec("t", "skewed", 300, 2, seed=0).build_columns()
        assert not np.array_equal(base["c0"], reseeded["c0"])
        assert not np.array_equal(base["c0"], skewed["c0"])

    def test_parse_round_trip(self):
        spec = TableSpec.parse("taxi:duplicate:1000:4:5")
        assert spec == TableSpec("taxi", "duplicate", 1000, 4, seed=5)
        payload_copy = TableSpec.from_payload(spec.to_payload())
        assert payload_copy == spec

    def test_parse_rejects_garbage(self):
        with pytest.raises(Exception):
            TableSpec.parse("no-colons")
        with pytest.raises(Exception):
            TableSpec.parse("t:unknown_kind:100:2")


# -------------------------------------------------------------------- locks


class TestPieceSnapshotLock:
    def test_readers_share(self):
        lock = PieceSnapshotLock()
        with lock.read():
            with lock.read():
                assert lock.readers == 2
        assert lock.readers == 0

    def test_writer_excludes_readers(self):
        lock = PieceSnapshotLock()
        order = []
        with lock.write():
            reader = threading.Thread(
                target=lambda: (lock.acquire_read(), order.append("read"))
            )
            reader.start()
            time.sleep(0.05)
            order.append("write-held")
        reader.join(timeout=5)
        lock.release_read()
        assert order == ["write-held", "read"]

    def test_write_timeout_returns_false_while_reader_holds(self):
        lock = PieceSnapshotLock()
        with lock.read():
            begin = time.monotonic()
            assert lock.acquire_write(timeout=0.05) is False
            assert time.monotonic() - begin < 2.0
        # After the reader leaves, the writer side works again.
        assert lock.acquire_write(timeout=0.05) is True
        lock.release_write()

    def test_timed_out_writer_does_not_strand_readers(self):
        lock = PieceSnapshotLock()
        with lock.read():
            assert not lock.acquire_write(timeout=0.02)
            # Writer preference must be cleared: a new reader gets in
            # immediately instead of waiting behind a ghost writer.
            acquired = []
            reader = threading.Thread(
                target=lambda: (lock.acquire_read(), acquired.append(True))
            )
            reader.start()
            reader.join(timeout=5)
            assert acquired == [True]
            lock.release_read()
        lock.release_read()

    def test_writer_preference_blocks_new_readers(self):
        lock = PieceSnapshotLock()
        lock.acquire_read()
        states = {}

        def writer():
            lock.acquire_write()
            states["writer"] = time.monotonic()
            lock.release_write()

        def late_reader():
            lock.acquire_read()
            states["reader"] = time.monotonic()
            lock.release_read()

        writer_thread = threading.Thread(target=writer)
        writer_thread.start()
        time.sleep(0.05)  # let the writer start waiting
        reader_thread = threading.Thread(target=late_reader)
        reader_thread.start()
        time.sleep(0.05)
        lock.release_read()  # first reader leaves; writer must win
        writer_thread.join(timeout=5)
        reader_thread.join(timeout=5)
        assert states["writer"] < states["reader"]


# ---------------------------------------------------------------- admission


class TestAdmission:
    def test_session_caps_per_tenant_and_global(self):
        control = AdmissionControl(
            AdmissionCaps(max_sessions=3, max_sessions_per_tenant=2)
        )
        control.admit_session("a")
        control.admit_session("a")
        with pytest.raises(AdmissionError):
            control.admit_session("a")  # tenant cap
        control.admit_session("b")
        with pytest.raises(AdmissionError):
            control.admit_session("c")  # global cap
        control.release_session("a")
        control.admit_session("c")  # freed capacity is reusable

    def test_inflight_cap_and_release(self):
        control = AdmissionControl(
            AdmissionCaps(max_inflight=2, max_inflight_per_tenant=1)
        )
        with control.inflight("a"):
            with pytest.raises(AdmissionError):
                with control.inflight("a"):
                    pass
            with control.inflight("b"):
                pass
        with control.inflight("a"):  # released on exit
            pass

    def test_rejections_are_counted_by_tenant_and_reason(self):
        control = AdmissionControl(AdmissionCaps(max_sessions_per_tenant=0))
        with pytest.raises(AdmissionError):
            control.admit_session("a")
        snapshot = control.snapshot()
        assert sum(snapshot["rejections"].values()) == 1
        (key,) = snapshot["rejections"]
        assert key.startswith("a/")


# ---------------------------------------------------------------- scheduler


def _spec_server(technique="greedy", **kwargs):
    server = IndexServer(technique=technique, size_threshold=256, **kwargs)
    spec = TableSpec("t", "uniform", 8_000, 3, seed=7)
    server.register_table("t", spec=spec)
    return server, spec


class TestScheduler:
    def test_refines_registered_index_to_convergence(self):
        server, spec = _spec_server()
        try:
            session = server.open_session("a")
            bounds = {"c0": (10.0, 30.0), "c1": (10.0, 30.0), "c2": (10.0, 30.0)}
            server.execute_query(session, "t", bounds)  # creates the index
            entry = next(iter(server._sessions[session].indexes.values()))
            # The scheduler only owns *refinement*; creation advances with
            # queries (the paper's per-query budget).  Drive it there.
            from repro.core.progressive_kdtree import CREATION

            while entry.index.phase == CREATION:
                server.execute_query(session, "t", bounds)
            deadline = time.monotonic() + 30
            while not entry.index.converged and time.monotonic() < deadline:
                server.scheduler.poke()
                time.sleep(0.01)
            assert entry.index.converged, "scheduler never converged the index"
            allocations = server.scheduler.allocations()
            assert allocations["a"]["rows"] > 0
            assert allocations["a"]["converged"] == 1
            # Converged answers still match the oracle.
            response = server.execute_query(session, "t", bounds)
            want_count, want_checksum = oracle_answer(spec, bounds)
            assert response["count"] == want_count
            assert response["checksum"] == want_checksum
        finally:
            server.close()

    def test_fair_share_tracks_weights(self):
        scheduler = RefinementScheduler()
        try:
            from repro.core import GreedyProgressiveKDTree, Table

            rng = np.random.default_rng(0)
            indexes = []
            for tenant, weight in (("light", 1.0), ("heavy", 3.0)):
                table = Table.from_matrix(rng.random((20_000, 2)) * 100)
                index = GreedyProgressiveKDTree(
                    table, delta=0.2, size_threshold=64
                )
                # Queries drive the index through creation; the scheduler
                # only takes over once it reaches the refinement phase.
                from repro.core.progressive_kdtree import CREATION
                from repro.core.query import RangeQuery

                probe = RangeQuery([10.0, 10.0], [20.0, 20.0])
                while index.phase == CREATION:
                    index.query(probe)
                lock = PieceSnapshotLock()
                scheduler.register(tenant, f"{tenant}/idx", index, lock, weight)
                indexes.append(index)
            deadline = time.monotonic() + 30
            while (
                not all(index.converged for index in indexes)
                and time.monotonic() < deadline
            ):
                scheduler.poke()
                time.sleep(0.01)
            allocations = scheduler.allocations()
            assert allocations["light"]["rows"] > 0
            assert allocations["heavy"]["rows"] > 0
            # Both converged: total work is similar, but the ledger must
            # show the weighting was applied while both were refinable
            # (heavy's per-weight share never exceeds light's by much).
            assert allocations["heavy"]["model_seconds"] > 0
        finally:
            scheduler.close()

    def test_paused_blocks_slices(self):
        server, _ = _spec_server()
        try:
            session = server.open_session("a")
            server.execute_query(
                session, "t", {"c0": (10.0, 30.0), "c1": (10.0, 30.0)}
            )
            with server.scheduler.paused():
                before = server.scheduler.slices_run
                server.scheduler.poke()
                time.sleep(0.1)
                assert server.scheduler.slices_run == before
                assert server.scheduler.quiescent
        finally:
            server.close()

    def test_close_stops_the_thread(self):
        scheduler = RefinementScheduler()
        assert scheduler.alive
        scheduler.close()
        assert not scheduler.alive


# -------------------------------------------------------------- server core


class TestIndexServerCore:
    def test_register_is_idempotent_for_identical_spec(self):
        server, spec = _spec_server()
        try:
            again = server.register_table("t", spec=spec)
            assert again["existing"] is True
            with pytest.raises(InvalidTableError):
                server.register_table(
                    "t", spec=TableSpec("t", "uniform", 8_000, 3, seed=8)
                )
        finally:
            server.close()

    @pytest.mark.parametrize("mode", ["adaptive", "snapshot"])
    def test_answers_match_oracle(self, mode):
        server, spec = _spec_server()
        try:
            session = server.open_session("a")
            rng = np.random.default_rng(5)
            for _ in range(8):
                low = rng.uniform(0, 60, size=3)
                high = low + rng.uniform(5, 30, size=3)
                bounds = {
                    f"c{d}": (float(low[d]), float(high[d])) for d in range(3)
                }
                response = server.execute_query(session, "t", bounds, mode=mode)
                want_count, want_checksum = oracle_answer(spec, bounds)
                assert response["count"] == want_count
                assert response["checksum"] == want_checksum
        finally:
            server.close()

    def test_return_ids_round_trip(self):
        server, spec = _spec_server()
        try:
            session = server.open_session("a")
            bounds = {"c0": (10.0, 40.0)}
            response = server.execute_query(
                session, "t", bounds, return_ids=True
            )
            ids = np.asarray(response["row_ids"], dtype=np.int64)
            assert answer_checksum(ids) == response["checksum"]
            assert ids.size == response["count"]
        finally:
            server.close()

    def test_column_subsets_get_separate_indexes(self):
        server, _ = _spec_server()
        try:
            session = server.open_session("a")
            server.execute_query(session, "t", {"c0": (0.0, 50.0)})
            server.execute_query(
                session, "t", {"c1": (0.0, 50.0), "c2": (0.0, 50.0)}
            )
            assert len(server._sessions[session].indexes) == 2
        finally:
            server.close()

    def test_check_is_clean_after_traffic(self):
        server, _ = _spec_server()
        try:
            session = server.open_session("a")
            for _ in range(5):
                server.execute_query(
                    session, "t", {"c0": (5.0, 60.0), "c1": (5.0, 60.0)}
                )
            findings = server.check()
            assert findings  # at least one index got checked
            assert all(not problems for problems in findings.values())
        finally:
            server.close()

    def test_close_session_unregisters_and_releases(self):
        server, _ = _spec_server(caps=AdmissionCaps(max_sessions_per_tenant=1))
        try:
            session = server.open_session("a")
            server.execute_query(session, "t", {"c0": (0.0, 50.0)})
            server.close_session(session)
            assert server.scheduler.allocations() == {}
            server.open_session("a")  # the cap slot was released
        finally:
            server.close()

    def test_stats_shape(self):
        server, _ = _spec_server()
        try:
            session = server.open_session("a")
            server.execute_query(session, "t", {"c0": (0.0, 50.0)})
            stats = server.stats()
            assert stats["queries_total"] == 1
            assert stats["tables"]["t"]["rows"] == 8_000
            assert stats["sessions"][session]["tenant"] == "a"
            assert "admission" in stats and "scheduler" in stats
        finally:
            server.close()


# ----------------------------------------- concurrent-reader snapshot reads


class TestSnapshotConcurrency:
    def test_reader_unblocked_while_other_tenant_refines(self):
        """A snapshot read on tenant A's index must complete, bit-identical
        to the serial oracle, while the scheduler is refining tenant B's
        index (cross-tenant isolation is structural: separate locks)."""
        server, spec = _spec_server()
        try:
            session_a = server.open_session("a")
            session_b = server.open_session("b")
            bounds = {"c0": (5.0, 70.0), "c1": (5.0, 70.0), "c2": (5.0, 70.0)}
            # Tenant A's index exists; B's index goes under heavy refinement.
            server.execute_query(session_a, "t", bounds)
            server.execute_query(session_b, "t", bounds)
            entry_b = next(iter(server._sessions[session_b].indexes.values()))
            # Hold B's writer lock on this thread, simulating a refinement
            # slice in flight on B.
            assert entry_b.lock.acquire_write(timeout=5)
            try:
                want_count, want_checksum = oracle_answer(spec, bounds)
                begin = time.monotonic()
                response = server.execute_query(
                    session_a, "t", bounds, mode="snapshot"
                )
                elapsed = time.monotonic() - begin
                assert response["count"] == want_count
                assert response["checksum"] == want_checksum
                assert elapsed < 5.0, (
                    "reader blocked behind another tenant's refinement"
                )
            finally:
                entry_b.lock.release_write()
        finally:
            server.close()

    def test_snapshot_reads_stay_consistent_during_refinement(self):
        """Snapshot reads racing the scheduler's refinement of the *same*
        index: every answer must still be bit-identical to the oracle —
        the reader always sees a complete piece set, never a half-moved
        one."""
        server = IndexServer(technique="greedy", size_threshold=128)
        spec = TableSpec("big", "uniform", 40_000, 3, seed=11)
        server.register_table("big", spec=spec)
        try:
            session = server.open_session("a")
            bounds = {"c0": (5.0, 70.0), "c1": (5.0, 70.0), "c2": (5.0, 70.0)}
            server.execute_query(session, "big", bounds)  # start refinement
            want_count, want_checksum = oracle_answer(spec, bounds)
            entry = next(iter(server._sessions[session].indexes.values()))
            mismatches = []
            for _ in range(50):
                server.scheduler.poke()
                response = server.execute_query(
                    session, "big", bounds, mode="snapshot"
                )
                if (
                    response["count"] != want_count
                    or response["checksum"] != want_checksum
                ):
                    mismatches.append(response["count"])
                if entry.index.converged:
                    break
            assert not mismatches, (
                f"snapshot reads diverged from the oracle during "
                f"refinement: counts {mismatches} != {want_count}"
            )
        finally:
            server.close()


# -------------------------------------------------------------- socket layer


class TestSocketRoundTrip:
    def test_full_protocol_over_tcp(self):
        spec = TableSpec("wire", "uniform", 5_000, 2, seed=3)
        with ServerThread(IndexServer(size_threshold=256)) as handle:
            with ServeClient(handle.host, handle.port) as client:
                hello = client.hello()
                assert hello["protocol"] >= 1
                registered = client.register_spec(spec)
                assert registered["rows"] == 5_000
                # Racing re-registration of the same spec is idempotent.
                assert client.register_spec(spec)["existing"] is True
                session = client.open_session("tenant-x")
                bounds = {"c0": (10.0, 55.0), "c1": (10.0, 55.0)}
                for mode in ("adaptive", "snapshot"):
                    response = client.query(session, "wire", bounds, mode=mode)
                    want_count, want_checksum = oracle_answer(spec, bounds)
                    assert response["count"] == want_count
                    assert response["checksum"] == want_checksum
                check = client.check()
                assert check["problems"] == 0
                stats = client.stats()
                assert stats["queries_total"] == 2
                client.close_session(session)
                client.shutdown()

    def test_admission_rejection_is_retryable_on_the_wire(self):
        server = IndexServer(caps=AdmissionCaps(max_sessions_per_tenant=1))
        with ServerThread(server) as handle:
            with ServeClient(handle.host, handle.port) as client:
                client.open_session("t")
                with pytest.raises(AdmissionRejected):
                    client.open_session("t")
                client.shutdown()

    def test_unknown_table_is_a_typed_error(self):
        with ServerThread(IndexServer()) as handle:
            with ServeClient(handle.host, handle.port) as client:
                session = client.open_session("t")
                with pytest.raises(ServeClientError) as excinfo:
                    client.query(session, "nope", {"c0": (0.0, 1.0)})
                assert not isinstance(excinfo.value, AdmissionRejected)
                client.shutdown()

    def test_server_survives_malformed_frames(self):
        with ServerThread(IndexServer()) as handle:
            with ServeClient(handle.host, handle.port) as client:
                client._sock.sendall(b"this is not json\n")
                response = decode_frame(client._file.readline())
                assert response["ok"] is False
                assert response["error"] == "protocol"
                # The connection still works afterwards.
                assert client.hello()["ok"] is True
                client.shutdown()

    def test_no_threads_leak_after_stop(self):
        before = {t.name for t in threading.enumerate()}
        with ServerThread(IndexServer()) as handle:
            with ServeClient(handle.host, handle.port) as client:
                client.hello()
        time.sleep(0.2)
        leaked = {
            t.name
            for t in threading.enumerate()
            if t.name not in before
            and ("repro-serve" in t.name or "scheduler" in t.name)
        }
        assert not leaked, f"server threads leaked: {leaked}"
