"""Property-based tests (hypothesis) for the partitioning kernels.

The partition kernels are the single place where rows physically move, so
every index bug ultimately routes through them.  Three families of
properties:

* :func:`stable_partition` — two-sidedness, stability (relative order
  preserved within each side), and lock-step alignment of all parallel
  arrays;
* :class:`IncrementalPartition` — the paused-state contract after every
  step of an *arbitrary* pause schedule, and schedule-independence: any
  sequence of budgets yields the same split position and the same
  per-side row multisets as a one-shot partition;
* cross-kernel agreement — the incremental kernel lands on exactly the
  split position the stable kernel computes;
* cross-backend agreement — every available kernel backend
  (:mod:`repro.kernels`) produces bit-identical partitions, and the
  incremental partition walks through bit-identical ``(lo, hi)`` state
  transitions regardless of which backend classifies and swaps.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import kernels
from repro.core.partition import IncrementalPartition, stable_partition


@st.composite
def partition_case(draw):
    """Random parallel arrays, a sub-range, a key column, and a pivot."""
    n_rows = draw(st.integers(min_value=0, max_value=200))
    n_arrays = draw(st.integers(min_value=1, max_value=4))
    seed = draw(st.integers(min_value=0, max_value=2**16))
    rng = np.random.default_rng(seed)
    kind = draw(st.sampled_from(["uniform", "integer", "constant"]))
    if kind == "uniform":
        keys = rng.random(n_rows) * 100
    elif kind == "integer":
        keys = rng.integers(0, 8, size=n_rows).astype(float)
    else:
        keys = np.full(n_rows, 7.0)
    arrays = [keys] + [
        np.arange(n_rows, dtype=np.float64) * (position + 1)
        for position in range(n_arrays - 1)
    ]
    start = draw(st.integers(min_value=0, max_value=n_rows))
    end = draw(st.integers(min_value=start, max_value=n_rows))
    if kind == "constant":
        pivot = draw(st.sampled_from([6.0, 7.0, 8.0]))
    elif n_rows and draw(st.booleans()):
        pivot = float(keys[draw(st.integers(0, n_rows - 1))])
    else:
        pivot = draw(
            st.floats(min_value=-10, max_value=110, allow_nan=False)
        )
    return arrays, start, end, 0, pivot


def _row_tuples(arrays, start, end):
    return {
        tuple(float(array[row]) for array in arrays)
        for row in range(start, end)
    }


@given(partition_case())
@settings(max_examples=150, deadline=None)
def test_stable_partition_two_sided_and_aligned(case):
    arrays, start, end, key_index, pivot = case
    originals = [array.copy() for array in arrays]
    before_rows = _row_tuples(arrays, start, end)

    split = stable_partition(arrays, start, end, key_index, pivot)

    assert start <= split <= end
    keys = arrays[key_index]
    assert (keys[start:split] <= pivot).all()
    assert (keys[split:end] > pivot).all()
    # Rows outside the range are untouched.
    for array, original in zip(arrays, originals):
        assert np.array_equal(array[:start], original[:start])
        assert np.array_equal(array[end:], original[end:])
    # Parallel arrays moved in lock-step: the multiset of full row tuples
    # inside the range is unchanged.
    assert _row_tuples(arrays, start, end) == before_rows


@given(partition_case())
@settings(max_examples=150, deadline=None)
def test_stable_partition_is_stable(case):
    arrays, start, end, key_index, pivot = case
    keys_before = arrays[key_index][start:end].copy()
    split = stable_partition(arrays, start, end, key_index, pivot)
    keys = arrays[key_index]
    # Stability: each side preserves the original relative order.
    left_expected = keys_before[keys_before <= pivot]
    right_expected = keys_before[keys_before > pivot]
    assert np.array_equal(keys[start:split], left_expected)
    assert np.array_equal(keys[split:end], right_expected)


@given(
    partition_case(),
    st.lists(st.integers(min_value=1, max_value=40), min_size=1, max_size=60),
)
@settings(max_examples=150, deadline=None)
def test_incremental_partition_pause_schedule_equivalence(case, budgets):
    """Any pause schedule lands on the one-shot split with the same sides.

    The paused-state contract (`invariant_errors`) must also hold after
    every single `advance` call, not just at the end.
    """
    arrays, start, end, key_index, pivot = case
    stable_arrays = [array.copy() for array in arrays]
    expected_split = stable_partition(
        stable_arrays, start, end, key_index, pivot
    )

    job = IncrementalPartition(arrays, start, end, key_index, pivot)
    assert job.invariant_errors() == []
    cursor = 0
    while not job.done:
        visited = job.advance(budgets[cursor % len(budgets)])
        cursor += 1
        assert job.invariant_errors() == []
        if not job.done:
            assert visited > 0, "advance must make forward progress"

    assert job.split == expected_split
    keys = arrays[key_index]
    assert (keys[start : job.split] <= pivot).all()
    assert (keys[job.split : end] > pivot).all()
    # Same rows on each side as the stable kernel (order may differ: the
    # incremental kernel swaps, the stable kernel preserves order).
    for side in ((start, expected_split), (expected_split, end)):
        got = _row_tuples(arrays, *side)
        want = _row_tuples(stable_arrays, *side)
        assert got == want


@given(partition_case())
@settings(max_examples=100, deadline=None)
def test_incremental_run_to_completion_matches_one_shot(case):
    arrays, start, end, key_index, pivot = case
    reference = [array.copy() for array in arrays]
    expected_split = stable_partition(reference, start, end, key_index, pivot)

    job = IncrementalPartition(arrays, start, end, key_index, pivot)
    job.run_to_completion()

    assert job.done
    assert job.remaining_rows == 0
    assert job.split == expected_split
    assert job.invariant_errors() == []


@pytest.mark.parametrize("backend_name", kernels.available_backends())
@given(case=partition_case())
@settings(max_examples=100, deadline=None)
def test_stable_partition_backends_bit_identical(backend_name, case):
    arrays, start, end, key_index, pivot = case
    backend = kernels.get_backend(backend_name)
    reference = kernels.get_backend("reference")
    got_arrays = [array.copy() for array in arrays]
    want_arrays = [array.copy() for array in arrays]
    got_split = backend.stable_partition(
        got_arrays, start, end, key_index, pivot
    )
    want_split = reference.stable_partition(
        want_arrays, start, end, key_index, pivot
    )
    assert got_split == want_split
    for got, want in zip(got_arrays, want_arrays):
        assert np.array_equal(got, want)


@pytest.mark.parametrize("backend_name", kernels.available_backends())
@given(
    case=partition_case(),
    budgets=st.lists(
        st.integers(min_value=1, max_value=40), min_size=1, max_size=20
    ),
)
@settings(max_examples=100, deadline=None)
def test_incremental_partition_backends_share_state_transitions(
    backend_name, case, budgets
):
    """Running the same pause schedule under any backend yields the same
    ``(lo, hi)`` pointer trajectory and the same array contents after
    every step — the incremental job is bit-deterministic across
    backends, so a paused index can even migrate between them."""
    arrays, start, end, key_index, pivot = case
    previous = kernels.active_name()
    try:
        kernels.use("reference")
        want_arrays = [array.copy() for array in arrays]
        want_job = IncrementalPartition(
            want_arrays, start, end, key_index, pivot
        )
        want_trace = []
        cursor = 0
        while not want_job.done:
            want_job.advance(budgets[cursor % len(budgets)])
            want_trace.append((want_job.lo, want_job.hi))
            cursor += 1

        kernels.use(backend_name)
        got_arrays = [array.copy() for array in arrays]
        got_job = IncrementalPartition(
            got_arrays, start, end, key_index, pivot
        )
        got_trace = []
        cursor = 0
        while not got_job.done:
            got_job.advance(budgets[cursor % len(budgets)])
            got_trace.append((got_job.lo, got_job.hi))
            cursor += 1
    finally:
        kernels.use(previous)
    assert got_trace == want_trace
    assert got_job.split == want_job.split
    for got, want in zip(got_arrays, want_arrays):
        assert np.array_equal(got, want)


@given(st.integers(min_value=0, max_value=2**16))
@settings(max_examples=50, deadline=None)
def test_incremental_invariant_errors_flag_corruption(seed):
    """A row smuggled into a classified region is reported, not ignored."""
    rng = np.random.default_rng(seed)
    keys = rng.random(64) * 100
    job = IncrementalPartition([keys], 0, 64, 0, 50.0)
    job.advance(10)
    if job.lo > 0:
        keys[0] = 99.0  # violates the classified-left contract
        assert any("classified-left" in p for p in job.invariant_errors())
