"""The morsel-driven parallel execution layer (:mod:`repro.parallel`).

The load-bearing property is *bit-identity*: for every backend and any
worker count, parallel execution must return exactly the serial answers
with exactly the serial work counters, and (on integer data, where mean
pivots are rounding-free) leave behind exactly the serial tree.  On top
of that: configuration plumbing, the I9 ownership protocol, thread-safe
kernel pinning, the tracer under concurrency, and background refinement
with quiescence.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

import repro.obs as obs
from repro import kernels
from repro.bench.harness import run_workload
from repro.core import RangeQuery, Table
from repro.core.metrics import QueryStats
from repro.errors import InvalidParameterError
from repro.fuzz import BACKENDS, FuzzCase, build_workload, make_backend
from repro.invariants import InvariantMonitor, structural_errors
from repro.obs import trace as obs_trace
from repro.obs.sink import ListSink
from repro.parallel import config as par_config
from repro.parallel import executor
from repro.parallel.background import BackgroundRefiner
from repro.session import ExplorationSession

from .conftest import make_queries, make_uniform_table

COUNTER_FIELDS = (
    "scanned", "copied", "swapped", "lookup_nodes", "nodes_created",
    "pruned", "contained",
)


@pytest.fixture(autouse=True)
def parallel_reset():
    """Each test gets — and leaves behind — the ambient worker count
    (so a whole-suite run under REPRO_PARALLEL=N stays at N), stock
    thresholds, and a clean ownership registry."""
    workers = par_config.get_workers()
    morsel, floor = par_config.MORSEL_ROWS, par_config.MIN_PARALLEL_ROWS
    par_config.reset_ownership_log()
    yield
    par_config.set_workers(workers)
    par_config.MORSEL_ROWS = morsel
    par_config.MIN_PARALLEL_ROWS = floor
    par_config.reset_ownership_log()
    obs.disable()


def lower_thresholds():
    """Make tiny test tables take the fan-out paths."""
    par_config.MORSEL_ROWS = 128
    par_config.MIN_PARALLEL_ROWS = 128


def counters_of(stats: QueryStats) -> tuple:
    return tuple(getattr(stats, field) for field in COUNTER_FIELDS)


# ------------------------------------------------------------- configuration

class TestConfig:
    def test_worker_count_follows_env(self):
        # Import-time selection honoured REPRO_PARALLEL (1 when unset);
        # asserted against the env so the suite itself can run under
        # REPRO_PARALLEL=N in CI.
        assert par_config.get_workers() == par_config._workers_from_env()

    def test_set_workers_roundtrip(self):
        assert par_config.set_workers(4) == 4
        assert par_config.get_workers() == 4

    @pytest.mark.parametrize("bad", [0, -1, "four", None])
    def test_set_workers_rejects(self, bad):
        with pytest.raises(InvalidParameterError):
            par_config.set_workers(bad)

    def test_env_parsing(self, monkeypatch):
        monkeypatch.delenv("REPRO_PARALLEL", raising=False)
        assert par_config._workers_from_env() == 1
        monkeypatch.setenv("REPRO_PARALLEL", "6")
        assert par_config._workers_from_env() == 6
        monkeypatch.setenv("REPRO_PARALLEL", "auto")
        assert par_config._workers_from_env() >= 1
        monkeypatch.setenv("REPRO_PARALLEL", "zero")
        with pytest.warns(UserWarning):
            assert par_config._workers_from_env() == 1
        monkeypatch.setenv("REPRO_PARALLEL", "-3")
        with pytest.warns(UserWarning):
            assert par_config._workers_from_env() == 1

    def test_pool_resizes_with_workers(self):
        par_config.set_workers(2)
        first = par_config.pool()
        assert par_config.pool() is first  # cached at the same size
        par_config.set_workers(3)
        second = par_config.pool()
        assert second is not first
        par_config.set_workers(1)
        par_config.shutdown_pool()

    def test_session_and_harness_plumbing(self):
        session = ExplorationSession(parallel=2)
        assert session.parallel == 2
        assert par_config.get_workers() == 2
        table = make_uniform_table(400, 2)
        from repro.workloads.base import Workload

        workload = Workload("w", table, make_queries(table, 3))
        run = run_workload("FS", workload, parallel=3)
        assert par_config.get_workers() == 3
        assert run.n_queries == 3


# -------------------------------------------------------- ownership registry

class TestOwnership:
    def test_claim_release_clean(self):
        piece = type("P", (), {"start": 0, "end": 10})()
        par_config.claim_piece(piece, "w0")
        assert par_config.owned_pieces() == [("w0", piece)]
        par_config.release_piece(piece, "w0")
        assert par_config.owned_pieces() == []
        assert par_config.ownership_violations() == []

    def test_double_claim_is_sticky(self):
        piece = type("P", (), {"start": 0, "end": 10})()
        par_config.claim_piece(piece, "w0")
        par_config.claim_piece(piece, "w1")
        par_config.release_piece(piece, "w0")
        violations = par_config.ownership_violations()
        assert len(violations) == 1 and "w1" in violations[0]
        # Sticky: still visible after the piece was released.
        assert par_config.owned_pieces() == []
        assert par_config.ownership_violations() == violations

    def test_release_mismatches_recorded(self):
        piece = type("P", (), {"start": 3, "end": 7})()
        par_config.release_piece(piece, "w0")  # never claimed
        par_config.claim_piece(piece, "w0")
        par_config.release_piece(piece, "w1")  # wrong owner
        assert len(par_config.ownership_violations()) == 2

    def test_i9_surfaces_in_structural_errors(self):
        table = make_uniform_table(300, 2)
        index = make_backend("pkd", table, FuzzCase(0, "uniform", 300, 2, 1))
        for query in make_queries(table, 3):
            index.query(query)
        assert structural_errors(index) == []
        piece = type("P", (), {"start": 0, "end": 10})()
        par_config.claim_piece(piece, "a")
        par_config.claim_piece(piece, "b")
        problems = structural_errors(index)
        assert any("claimed by 'b'" in p for p in problems)
        par_config.reset_ownership_log()
        assert structural_errors(index) == []


# ------------------------------------------------------ kernel thread-safety

class TestKernelPinning:
    def test_pin_snapshot_and_restore(self):
        base = kernels.current_backend()
        other = kernels.get_backend("reference")
        with kernels.pinned(other):
            assert kernels.current_backend() is other
            with kernels.pinned():  # nested: snapshots the current pin
                assert kernels.current_backend() is other
        assert kernels.current_backend() is base

    def test_pin_shields_query_from_global_switch(self):
        active = kernels.active_name()
        with kernels.pinned(kernels.get_backend(active)):
            kernels.use("reference")
            assert kernels.current_backend().name == active
        kernels.use(active)

    def test_thread_instance_is_private_per_thread(self):
        main_instance = kernels.thread_instance("numpy")
        assert kernels.thread_instance("numpy") is main_instance  # cached
        seen = []

        def worker():
            seen.append(kernels.thread_instance("numpy"))

        thread = threading.Thread(target=worker)
        thread.start()
        thread.join()
        assert seen[0] is not main_instance
        assert type(seen[0]) is type(main_instance)

    def test_thread_instance_unknown_name(self):
        with pytest.raises(InvalidParameterError):
            kernels.thread_instance("nope")


# ------------------------------------------------------- tracer concurrency

class TestTracerThreads:
    def test_two_threads_trace_without_corruption(self):
        sink = ListSink()
        obs_trace.install(obs_trace.Tracer(sink))
        try:
            barrier = threading.Barrier(2)

            def worker(label):
                barrier.wait()
                for i in range(20):
                    with obs_trace.TRACER.span("outer", who=label, i=i):
                        with obs_trace.TRACER.span("inner", who=label, i=i):
                            pass

            threads = [
                threading.Thread(target=worker, args=(str(t),))
                for t in range(2)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
        finally:
            obs_trace.uninstall()
        spans = [r for r in sink.records if r["type"] == "span"]
        assert len(spans) == 80
        ids = [s["id"] for s in spans]
        assert len(set(ids)) == 80  # no duplicate span ids under the lock
        by_id = {s["id"]: s for s in spans}
        for span in spans:
            if span["name"] == "inner":
                parent = by_id[span["parent"]]
                # Thread-local stacks: an inner span's parent is its own
                # thread's outer span, never the other thread's.
                assert parent["name"] == "outer"
                assert parent["attrs"]["who"] == span["attrs"]["who"]
                assert parent["attrs"]["i"] == span["attrs"]["i"]
            else:
                assert span["parent"] is None

    def test_explicit_parent_crosses_threads(self):
        sink = ListSink()
        obs_trace.install(obs_trace.Tracer(sink))
        try:
            with obs_trace.TRACER.span("fanout") as dispatch:
                parent_id = dispatch.span_id

                def worker():
                    with obs_trace.TRACER.span("morsel", parent=parent_id):
                        pass

                thread = threading.Thread(target=worker)
                thread.start()
                thread.join()
        finally:
            obs_trace.uninstall()
        spans = {r["name"]: r for r in sink.records if r["type"] == "span"}
        assert spans["morsel"]["parent"] == spans["fanout"]["id"]


# ------------------------------------------------------------- executor units

class TestScanRange:
    def test_morsel_split_is_bit_identical(self):
        table = make_uniform_table(5000, 3, seed=3)
        query = make_queries(table, 1, width_fraction=0.4)[0]
        serial_stats = QueryStats()
        serial = kernels.range_scan(
            table.columns(), 0, table.n_rows, query, serial_stats, None, None
        )
        par_config.set_workers(4)
        lower_thresholds()
        parallel_stats = QueryStats()
        parallel = executor.scan_range(
            table.columns(), 0, table.n_rows, query, parallel_stats, None, None
        )
        assert np.array_equal(serial, parallel)
        assert counters_of(serial_stats) == counters_of(parallel_stats)

    def test_small_window_falls_through(self):
        par_config.set_workers(4)  # stock thresholds: 600 rows stay serial
        table = make_uniform_table(600, 2)
        query = make_queries(table, 1)[0]
        stats = QueryStats()
        positions = executor.scan_range(
            table.columns(), 0, table.n_rows, query, stats, None, None
        )
        want = kernels.range_scan(
            table.columns(), 0, table.n_rows, query, QueryStats(), None, None
        )
        assert np.array_equal(positions, want)

    def test_morsel_spans_parented_under_fanout(self):
        table = make_uniform_table(4000, 2, seed=5)
        query = make_queries(table, 1, width_fraction=0.5)[0]
        par_config.set_workers(2)
        lower_thresholds()
        sink = ListSink()
        obs_trace.install(obs_trace.Tracer(sink))
        try:
            with obs_trace.TRACER.span("driver") as driver:
                executor.scan_range(
                    table.columns(), 0, table.n_rows, query, QueryStats(),
                    None, None,
                )
                driver_id = driver.span_id
        finally:
            obs_trace.uninstall()
        morsels = [
            r for r in sink.records
            if r["type"] == "span" and r["name"] == "morsel"
        ]
        assert morsels and all(m["parent"] == driver_id for m in morsels)
        assert all(m["attrs"]["op"] == "scan" for m in morsels)


class TestScanPieces:
    def test_piece_chunking_is_bit_identical(self):
        table = make_uniform_table(4000, 2, seed=7)
        case = FuzzCase(0, "uniform", 4000, 2, 0, size_threshold=64)
        index = make_backend("avgkd", table, case)
        index.query(make_queries(table, 1)[0])  # build the tree
        query = make_queries(table, 1, width_fraction=0.6, seed=9)[0]
        matches = index.tree.search(query, QueryStats())
        serial_stats = QueryStats()
        serial = [
            index._index.scan_piece(m, query, serial_stats) for m in matches
        ]
        par_config.set_workers(4)
        lower_thresholds()
        parallel_stats = QueryStats()
        parallel = index._index.scan_pieces(matches, query, parallel_stats)
        assert len(serial) == len(parallel)
        for want, got in zip(serial, parallel):
            assert np.array_equal(want, got)
        assert counters_of(serial_stats) == counters_of(parallel_stats)


class TestAdvanceJobs:
    def test_empty_and_serial_paths(self):
        assert executor.advance_jobs([]) == []

    def test_claims_are_released_after_fanout(self):
        table = make_uniform_table(2000, 2, seed=11)
        case = FuzzCase(0, "uniform", 2000, 2, 0, size_threshold=64, delta=0.1)
        index = make_backend("pkd", table, case)
        queries = make_queries(table, 40, seed=13)
        par_config.set_workers(3)
        lower_thresholds()
        for query in queries:
            index.query(query)
            if index.converged:
                break
        assert par_config.owned_pieces() == []
        assert par_config.ownership_violations() == []


# --------------------------------------------------------- cross-backend I/O

def run_case(backend, kind, workers, n_queries=25):
    """Answers + final structure signature for one backend/worker config."""
    par_config.set_workers(workers)
    if workers > 1:
        lower_thresholds()
    case = FuzzCase(
        seed=2, kind=kind, n_rows=1200, n_dims=2, n_queries=n_queries,
        size_threshold=64, delta=0.25,
    )
    table, queries = build_workload(case)
    index = make_backend(backend, table, case)
    monitor = InvariantMonitor(index)
    answers = []
    stats_trail = []
    for query in queries:
        result = index.query(query)
        answers.append(tuple(np.sort(result.row_ids).tolist()))
        stats_trail.append(counters_of(result.stats))
        problems = monitor.observe()
        assert problems == [], f"{backend}/{kind} x{workers}: {problems[:3]}"
    if backend in ("pkd", "gpkd"):
        # Scheduling order makes mid-flight progressive trees differ by
        # design; the structural identity claim is at convergence.  Spin
        # unbounded probes until the index gets there.  (The other
        # backends never fan refinement out, so their structure is
        # already schedule-independent.)
        n_dims = table.n_columns
        probe = RangeQuery([-np.inf] * n_dims, [np.inf] * n_dims)
        spins = 0
        while not index.converged and spins < 400:
            index.query(probe)
            spins += 1
        assert index.converged, f"{backend}/{kind} x{workers} never converged"
    tree = getattr(index, "tree", None)
    signature = tree.preorder_signature() if tree is not None else None
    return answers, stats_trail, signature


class TestBitIdentity:
    """Every backend, workers in {2, 4, 8}: identical answers, counters,
    and final tree structure vs the serial run.

    ``duplicate`` integer data keeps mean pivots rounding-free, so tree
    signatures must match exactly (the I6 caveat does not apply)."""

    @pytest.mark.parametrize("backend", sorted(BACKENDS))
    @pytest.mark.parametrize("workers", [2, 4])
    def test_backend_matches_serial(self, backend, workers):
        serial = run_case(backend, "duplicate", 1)
        parallel = run_case(backend, "duplicate", workers)
        assert serial[0] == parallel[0], "answers diverged"
        if backend not in ("pkd", "gpkd"):
            # Progressive refinement schedules several pieces per round
            # when parallel, so per-query scheduling charges land on
            # different queries; the bit-identity claim there is answers
            # plus final structure, not the per-query ledger.
            assert serial[1] == parallel[1], "work counters diverged"
        assert serial[2] == parallel[2], "final tree structure diverged"

    @pytest.mark.parametrize("backend", ["fs", "akd", "pkd", "gpkd"])
    def test_eight_workers_uniform(self, backend):
        serial = run_case(backend, "uniform", 1, n_queries=15)
        parallel = run_case(backend, "uniform", 8, n_queries=15)
        assert serial[0] == parallel[0]
        if backend not in ("pkd", "gpkd"):
            assert serial[1] == parallel[1]

    def test_creation_phase_scans_match(self):
        # Mid-creation PKD exercises the three-region scan_range path.
        serial = run_case("pkd", "uniform", 1, n_queries=3)
        parallel = run_case("pkd", "uniform", 4, n_queries=3)
        assert serial[0] == parallel[0]
        assert serial[1] == parallel[1]


# ------------------------------------------------------ background refinement

class TestBackgroundRefiner:
    def test_background_converges_index_between_queries(self):
        rng = np.random.default_rng(17)
        columns = {
            "x": rng.integers(0, 500, 4000),
            "y": rng.integers(0, 500, 4000),
        }
        session = ExplorationSession(
            technique="progressive",
            size_threshold=128,
            delta=0.05,
            background_refine=True,
        )
        session.register("t", columns)
        session.query("t", x=(10, 400), y=(10, 400))
        index = next(iter(session._tables["t"].indexes.values()))
        refiner = index._background
        assert isinstance(refiner, BackgroundRefiner) and refiner.alive
        # The refiner only advances the refinement phase; foreground
        # queries must finish creation first (~1/delta of them).  After
        # that, think time alone must converge the index.
        from repro.core.progressive_kdtree import REFINEMENT

        for _ in range(100):
            if index.phase == REFINEMENT or index.converged:
                break
            session.query("t", x=(10, 400), y=(10, 400))
        deadline = 200
        while not index.converged and deadline > 0:
            refiner.poke()
            threading.Event().wait(0.02)
            deadline -= 1
        assert index.converged, "background refinement never converged"
        assert refiner.slices_run > 0
        assert refiner.stats.swapped > 0
        # Post-convergence queries still answer correctly and invariants
        # (including I9 quiescence) hold.
        result = session.query("t", x=(0, 100), y=(0, 100))
        want = np.flatnonzero(
            (columns["x"] > 0) & (columns["x"] <= 100)
            & (columns["y"] > 0) & (columns["y"] <= 100)
        )
        assert np.array_equal(np.sort(result.row_ids), want)
        findings = session.check("t")
        assert all(not problems for problems in findings.values())
        session.close()
        assert not refiner.alive

    def test_close_is_idempotent_and_context_manager(self):
        with ExplorationSession(background_refine=True) as session:
            session.register("t", {"x": np.arange(100.0)})
            session.query("t", x=(10, 20))
        session.close()  # second close is a no-op

    def test_non_progressive_backends_get_no_refiner(self):
        session = ExplorationSession(technique="scan", background_refine=True)
        session.register("t", {"x": np.arange(50.0)})
        session.query("t", x=(1, 5))
        index = next(iter(session._tables["t"].indexes.values()))
        assert getattr(index, "_background", None) is None
        session.close()


# ------------------------------------------------------------- fuzz smoke

def test_fuzz_smoke_under_parallel():
    from repro.fuzz import run_fuzz

    par_config.set_workers(4)
    par_config.MORSEL_ROWS = 256
    par_config.MIN_PARALLEL_ROWS = 256
    report = run_fuzz(
        seed=5, queries=8, rows=600,
        kinds=["uniform", "duplicate"], log=lambda line: None,
    )
    assert report.ok, [f.describe() for f in report.failures]
