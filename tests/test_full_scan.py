"""FullScan baseline: correctness and cost profile."""

import numpy as np
import pytest

from repro import FullScan, InvalidQueryError, RangeQuery
from tests.conftest import assert_correct, make_queries, make_uniform_table


class TestFullScan:
    def test_correct_on_uniform(self, small_table, small_queries):
        assert_correct(FullScan(small_table), small_table, small_queries)

    def test_correct_on_duplicates(self, duplicate_table):
        queries = make_queries(duplicate_table, 15, width_fraction=0.3, seed=2)
        assert_correct(FullScan(duplicate_table), duplicate_table, queries)

    def test_always_converged(self, small_table):
        assert FullScan(small_table).converged

    def test_no_nodes(self, small_table, small_queries):
        index = FullScan(small_table)
        index.query(small_queries[0])
        assert index.node_count == 0

    def test_cost_stays_flat(self, small_table, small_queries):
        index = FullScan(small_table)
        works = [index.query(q).stats.work for q in small_queries]
        # Scans never get faster or slower: first-column cost identical.
        assert max(works) <= 2 * min(works)

    def test_no_indexing_work(self, small_table, small_queries):
        index = FullScan(small_table)
        for query in small_queries:
            stats = index.query(query).stats
            assert stats.copied == 0
            assert stats.swapped == 0
            assert stats.nodes_created == 0

    def test_result_metadata(self, small_table, small_queries):
        result = FullScan(small_table).query(small_queries[0])
        assert result.count == result.stats.result_count
        assert result.checksum() == int(result.row_ids.sum())

    def test_dimension_mismatch_rejected(self, small_table):
        with pytest.raises(InvalidQueryError):
            FullScan(small_table).query(RangeQuery([0.0], [1.0]))

    def test_empty_query_returns_nothing(self, small_table):
        query = RangeQuery([5.0, 5.0, 5.0], [5.0, 5.0, 5.0])
        assert FullScan(small_table).query(query).count == 0

    def test_whole_domain_query_returns_everything(self):
        table = make_uniform_table(500, 2, seed=1)
        query = RangeQuery([-np.inf, -np.inf], [np.inf, np.inf])
        assert FullScan(table).query(query).count == 500
