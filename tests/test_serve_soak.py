"""The soak harness itself (:mod:`repro.serve.loadgen` / ``.report``).

A real (but query-bounded) 8-client soak through the complete machinery:
spawned server, concurrent client threads, per-answer oracle checks,
invariant checkpoints, and the rendered verdict report.  The full
60-second wall-clock soak runs in CI's ``serve-soak`` job; here the run
is bounded by queries-per-client so the suite stays fast.
"""

from __future__ import annotations

import pytest

from repro.serve.loadgen import (
    Oracle,
    SoakConfig,
    client_bounds,
    main as loadgen_main,
    run_soak,
)
from repro.serve.protocol import TableSpec
from repro.serve.report import (
    CheckpointOutcome,
    ClientOutcome,
    SoakReport,
    render_report,
)


def _fast_config(**overrides):
    defaults = dict(
        clients=8,
        seconds=60.0,  # generous ceiling; queries_per_client bounds the run
        queries_per_client=12,
        spec=TableSpec("soaktest", "uniform", 6_000, 3, seed=7),
        checkpoint_seconds=0.5,
        seed=3,
        size_threshold=256,
    )
    defaults.update(overrides)
    return SoakConfig(**defaults)


class TestLoadgenDeterminism:
    def test_client_scripts_are_reproducible(self):
        oracle = Oracle(TableSpec("d", "uniform", 2_000, 2, seed=1))
        first = client_bounds(oracle, "random", 10, 0.01, seed=5)
        second = client_bounds(oracle, "random", 10, 0.01, seed=5)
        assert first == second
        # zoom ignores its seed by design (a fixed drill-down trajectory);
        # the randomised patterns must honour it.
        different = client_bounds(oracle, "random", 10, 0.01, seed=6)
        assert first != different

    def test_patterns_differ(self):
        oracle = Oracle(TableSpec("d", "uniform", 2_000, 2, seed=1))
        zoom = client_bounds(oracle, "zoom", 10, 0.01, seed=5)
        random_walk = client_bounds(oracle, "random", 10, 0.01, seed=5)
        assert zoom != random_walk

    def test_oracle_rebuild_matches_spec(self):
        spec = TableSpec("d", "skewed", 1_000, 2, seed=9)
        import numpy as np

        built = spec.build_columns()
        oracle = Oracle(spec)
        for name, column in built.items():
            position = oracle.names.index(name)
            assert np.array_equal(oracle.columns[position], column)


class TestSoakEndToEnd:
    @pytest.fixture(scope="class")
    def report(self):
        return run_soak(_fast_config(), log=lambda message: None)

    def test_soak_passes(self, report):
        assert report.total_mismatches == 0, report.clients
        assert report.total_errors == 0, [c.errors for c in report.clients]
        assert report.total_invariant_problems == 0
        assert report.passed

    def test_every_client_ran_its_quota(self, report):
        assert len(report.clients) == 8
        for client in report.clients:
            assert client.queries == 12, (
                f"{client.tenant} ran {client.queries} queries"
            )

    def test_checkpoints_covered_live_indexes(self, report):
        assert report.checkpoints
        final = report.checkpoints[-1]
        assert final.indexes_checked > 0, (
            "final invariant sweep saw no live indexes"
        )

    def test_server_stats_captured(self, report):
        assert report.server_stats is not None
        assert report.server_stats["queries_total"] >= 8 * 12
        assert "allocations" in report.server_stats["scheduler"]

    def test_rendered_report_has_verdict_and_sections(self, report):
        rendered = render_report(report)
        assert "## Verdict: **PASS**" in rendered
        for section in (
            "## Run configuration",
            "## Headline numbers",
            "## Per-tenant traffic and latency",
            "## Refinement-budget allocation per tenant",
            "## Invariant checkpoints (I1–I9)",
            "## Anomalies",
            "## Reproduction",
        ):
            assert section in rendered, f"missing section: {section}"
        for client in report.clients:
            assert client.tenant in rendered


class TestVerdictLogic:
    def _minimal_passing(self):
        outcome = ClientOutcome(client_id=0, tenant="t", pattern="zoom")
        outcome.queries = 1
        outcome.latencies_ms = [1.0]
        return SoakReport(
            config={"command": "x"},
            clients=[outcome],
            checkpoints=[CheckpointOutcome(1.0, indexes_checked=1)],
            duration_seconds=1.0,
        )

    def test_minimal_pass(self):
        assert self._minimal_passing().passed

    def test_mismatch_fails(self):
        report = self._minimal_passing()
        report.clients[0].mismatches.append({"got": 1, "want": 2})
        assert not report.passed
        assert "## Verdict: **FAIL**" in render_report(report)

    def test_invariant_violation_fails(self):
        report = self._minimal_passing()
        report.checkpoints[0].problems.append("I3: unsorted piece")
        assert not report.passed
        rendered = render_report(report)
        assert "I3: unsorted piece" in rendered

    def test_zero_queries_fails(self):
        report = self._minimal_passing()
        report.clients[0].queries = 0
        assert not report.passed

    def test_client_error_fails(self):
        report = self._minimal_passing()
        report.clients[0].errors.append("connection reset")
        assert not report.passed


class TestLoadgenCli:
    def test_cli_writes_report_and_exits_zero(self, tmp_path, capsys):
        report_path = tmp_path / "report.md"
        status = loadgen_main(
            [
                "--clients", "2",
                "--seconds", "30",
                "--queries-per-client", "4",
                "--table", "cli:uniform:3000:2:5",
                "--checkpoint-seconds", "0.5",
                "--report", str(report_path),
            ]
        )
        assert status == 0
        output = capsys.readouterr().out
        assert "PASS" in output
        text = report_path.read_text()
        assert "## Verdict: **PASS**" in text

    def test_cli_rejects_unknown_pattern(self):
        with pytest.raises(SystemExit):
            loadgen_main(["--mix", "zoom,unheard-of"])
