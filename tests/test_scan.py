"""Scan kernels: candidate-list semantics, residual checks, work counters."""

import numpy as np
import pytest

from repro import RangeQuery
from repro.core.metrics import QueryStats
from repro.core.scan import count_matches, full_scan, full_scan_bitmap, range_scan


def brute_force(columns, query):
    keep = np.ones(columns[0].shape[0], dtype=bool)
    for dim in range(query.n_dims):
        keep &= (columns[dim] > query.lows[dim]) & (columns[dim] <= query.highs[dim])
    return np.flatnonzero(keep)


@pytest.fixture
def columns():
    rng = np.random.default_rng(0)
    return [rng.random(500) * 100 for _ in range(3)]


class TestFullScan:
    def test_matches_brute_force(self, columns):
        query = RangeQuery([10.0, 20.0, 30.0], [60.0, 70.0, 80.0])
        got = full_scan(columns, query, QueryStats())
        assert np.array_equal(np.sort(got), brute_force(columns, query))

    def test_half_open_semantics(self):
        column = np.array([1.0, 2.0, 3.0, 4.0])
        query = RangeQuery([2.0], [3.0])
        got = full_scan([column], query, QueryStats())
        assert list(got) == [2]  # only the value 3: 2 < x <= 3

    def test_empty_result(self, columns):
        query = RangeQuery([200.0, 0.0, 0.0], [300.0, 100.0, 100.0])
        assert full_scan(columns, query, QueryStats()).size == 0

    def test_infinite_bounds_skip_checks(self, columns):
        stats = QueryStats()
        query = RangeQuery([-np.inf] * 3, [np.inf] * 3)
        got = full_scan(columns, query, stats)
        assert got.size == 500
        assert stats.scanned == 0  # nothing needed checking

    def test_counts_first_column_fully(self, columns):
        stats = QueryStats()
        query = RangeQuery([0.0, 0.0, 0.0], [50.0, 100.0, 100.0])
        full_scan(columns, query, stats)
        # First column scanned fully; later columns only candidates.
        assert stats.scanned >= 500
        assert stats.scanned < 3 * 500

    def test_short_circuits_on_empty_candidates(self, columns):
        stats = QueryStats()
        query = RangeQuery([200.0, 0.0, 0.0], [300.0, 1.0, 1.0])
        full_scan(columns, query, stats)
        assert stats.scanned == 500  # later columns never touched

    def test_no_columns(self):
        assert full_scan([], RangeQuery([0.0], [1.0]), QueryStats()).size == 0


class TestRangeScan:
    def test_subrange_only(self, columns):
        query = RangeQuery([0.0, 0.0, 0.0], [100.0, 100.0, 100.0])
        got = range_scan(columns, 100, 200, query, QueryStats())
        assert got.min() >= 100 and got.max() < 200

    def test_returns_absolute_positions(self, columns):
        query = RangeQuery([10.0, 10.0, 10.0], [90.0, 90.0, 90.0])
        got = range_scan(columns, 50, 450, query, QueryStats())
        want = brute_force(columns, query)
        want = want[(want >= 50) & (want < 450)]
        assert np.array_equal(np.sort(got), want)

    def test_check_flags_skip_implied_predicates(self, columns):
        stats = QueryStats()
        query = RangeQuery([10.0, 10.0, 10.0], [90.0, 90.0, 90.0])
        none_needed = range_scan(
            columns,
            0,
            500,
            query,
            stats,
            check_low=[False] * 3,
            check_high=[False] * 3,
        )
        assert none_needed.size == 500
        assert stats.scanned == 0

    def test_check_flags_partial(self, columns):
        # Only dim 0's lower bound needs checking.
        query = RangeQuery([50.0, 0.0, 0.0], [100.0, 100.0, 100.0])
        got = range_scan(
            columns,
            0,
            500,
            query,
            QueryStats(),
            check_low=[True, False, False],
            check_high=[False, False, False],
        )
        want = np.flatnonzero(columns[0] > 50.0)
        assert np.array_equal(np.sort(got), want)

    def test_empty_range(self, columns):
        query = RangeQuery([0.0] * 3, [100.0] * 3)
        assert range_scan(columns, 10, 10, query, QueryStats()).size == 0
        assert range_scan(columns, 10, 5, query, QueryStats()).size == 0


class TestBitmapScan:
    def test_matches_candidate_scan(self, columns):
        query = RangeQuery([10.0, 20.0, 30.0], [60.0, 70.0, 80.0])
        option1 = full_scan_bitmap(columns, query, QueryStats())
        option2 = full_scan(columns, query, QueryStats())
        assert np.array_equal(np.sort(option1), np.sort(option2))

    def test_scans_every_column_fully(self, columns):
        stats = QueryStats()
        query = RangeQuery([10.0, 20.0, 30.0], [60.0, 70.0, 80.0])
        full_scan_bitmap(columns, query, stats)
        assert stats.scanned == 3 * 500

    def test_all_unbounded(self, columns):
        query = RangeQuery([-np.inf] * 3, [np.inf] * 3)
        assert full_scan_bitmap(columns, query, QueryStats()).size == 500


class TestCountMatches:
    def test_count(self, columns):
        query = RangeQuery([10.0, 20.0, 30.0], [60.0, 70.0, 80.0])
        assert count_matches(columns, query) == brute_force(columns, query).size
