"""Workload generators: data, the Fig. 4 patterns, shifting, real stand-ins."""

import numpy as np
import pytest

from repro import RangeQuery, WorkloadError
from repro.workloads import (
    SYNTHETIC_PATTERNS,
    alternating_zoom_queries,
    clustered_table,
    genomics_workload,
    make_synthetic_workload,
    per_dimension_selectivity,
    periodic_queries,
    power_workload,
    sequential_queries,
    shifting_workload,
    skewed_table,
    skyserver_workload,
    uniform_table,
    zoom_queries,
)
from repro.workloads.base import Workload


class TestSelectivityRule:
    def test_paper_values(self):
        # Section IV-A: sigma=1% -> 10% at d=2, 31% at d=4, 56% at d=8.
        assert per_dimension_selectivity(0.01, 2) == pytest.approx(0.10, abs=0.005)
        assert per_dimension_selectivity(0.01, 4) == pytest.approx(0.31, abs=0.01)
        assert per_dimension_selectivity(0.01, 8) == pytest.approx(0.56, abs=0.01)

    def test_single_dimension_identity(self):
        assert per_dimension_selectivity(0.05, 1) == pytest.approx(0.05)

    def test_rejects_bad_selectivity(self):
        with pytest.raises(WorkloadError):
            per_dimension_selectivity(0.0, 2)
        with pytest.raises(WorkloadError):
            per_dimension_selectivity(1.5, 2)
        with pytest.raises(WorkloadError):
            per_dimension_selectivity(0.1, 0)


class TestDataGenerators:
    def test_uniform_shape_and_range(self):
        table = uniform_table(1_000, 3, seed=1)
        assert table.n_rows == 1_000 and table.n_columns == 3
        assert table.minimums().min() >= 0.0
        assert table.maximums().max() <= 1_000.0

    def test_uniform_deterministic_by_seed(self):
        first = uniform_table(100, 2, seed=5)
        second = uniform_table(100, 2, seed=5)
        assert np.array_equal(first.column(0), second.column(0))

    def test_skewed_is_heavy_tailed(self):
        table = skewed_table(5_000, 1, seed=2)
        column = table.column(0)
        assert np.mean(column) > np.median(column) * 1.5

    def test_clustered_has_clusters(self):
        table = clustered_table(2_000, 2, n_clusters=4, spread=0.005, seed=3)
        assert table.n_rows == 2_000

    def test_shape_validation(self):
        with pytest.raises(WorkloadError):
            uniform_table(0, 2)
        with pytest.raises(WorkloadError):
            clustered_table(100, 2, n_clusters=0)


def selectivity_of(table, query):
    keep = np.ones(table.n_rows, dtype=bool)
    for dim in range(table.n_columns):
        column = table.column(dim)
        keep &= (column > query.lows[dim]) & (column <= query.highs[dim])
    return keep.mean()


class TestPatterns:
    @pytest.mark.parametrize("pattern", sorted(SYNTHETIC_PATTERNS))
    def test_pattern_produces_valid_queries(self, pattern):
        workload = make_synthetic_workload(pattern, 2_000, 3, 30, 0.01, seed=1)
        assert workload.n_queries == 30
        minimums = workload.table.minimums()
        maximums = workload.table.maximums()
        for query in workload.queries:
            assert query.n_dims == 3
            assert (query.lows >= minimums - 1e-9).all()
            assert (query.highs <= maximums + 1e-9).all()
            assert not query.is_empty()

    @pytest.mark.parametrize("pattern", ["uniform", "skewed", "periodic"])
    def test_pattern_selectivity_approximate(self, pattern):
        workload = make_synthetic_workload(pattern, 4_000, 2, 20, 0.01, seed=2)
        observed = np.mean(
            [selectivity_of(workload.table, q) for q in workload.queries]
        )
        assert 0.001 < observed < 0.05  # about 1%, allowing edge effects

    def test_uniform_deterministic(self):
        table = uniform_table(1_000, 2, seed=4)
        from repro.workloads.patterns import uniform_queries

        first = uniform_queries(table, 10, 0.01, seed=9)
        second = uniform_queries(table, 10, 0.01, seed=9)
        assert first == second

    def test_sequential_disjoint(self):
        table = uniform_table(2_000, 2, seed=5)
        queries = sequential_queries(table, 50, 1e-4, seed=6)
        for first, second in zip(queries, queries[1:]):
            # Sweeping: consecutive windows move strictly forward.
            assert (second.lows >= first.lows).all()
        # Tiny selectivity makes them non-overlapping.
        assert queries[0].highs[0] <= queries[1].lows[0] + 1e-9

    def test_periodic_restarts(self):
        table = uniform_table(2_000, 2, seed=7)
        queries = periodic_queries(table, 40, 0.01, period=10)
        width = queries[0].highs[0] - queries[0].lows[0]
        # The restart revisits (almost) the same window — jittered so each
        # pass cracks slightly different positions, as in the paper's runs.
        assert abs(queries[0].lows[0] - queries[10].lows[0]) < width
        assert queries[5].lows[0] > queries[0].lows[0] + width

    def test_zoom_converges_to_centre(self):
        table = uniform_table(2_000, 1, seed=8)
        queries = zoom_queries(table, 20, 0.01)
        centre = table.minimums()[0] + (table.maximums() - table.minimums())[0] / 2
        first_distance = abs(queries[0].lows[0] - centre)
        last_distance = abs(queries[-1].lows[0] - centre)
        assert last_distance < first_distance

    def test_alternating_zoom_two_targets(self):
        table = uniform_table(2_000, 1, seed=9)
        queries = alternating_zoom_queries(table, 40, 0.01)
        even_mean = np.mean([q.lows[0] for q in queries[::2]])
        odd_mean = np.mean([q.lows[0] for q in queries[1::2]])
        assert abs(even_mean - odd_mean) > 0.2 * table.n_rows

    def test_unknown_pattern_rejected(self):
        with pytest.raises(WorkloadError):
            make_synthetic_workload("nonsense", 100, 2, 10)

    def test_workload_names_match_paper(self):
        workload = make_synthetic_workload("uniform", 500, 8, 5, seed=0)
        assert workload.name == "Unif(8)"
        workload = make_synthetic_workload("periodic", 500, 8, 5, seed=0)
        assert workload.name == "Prdc(8)"


class TestShifting:
    def test_table_is_wider(self):
        workload = shifting_workload(500, 3, 40, n_groups=4, queries_per_shift=10)
        assert workload.table.n_columns == 12
        assert workload.query_dims == 3
        assert len(workload.groups) == 4

    def test_labels_rotate_every_k_queries(self):
        workload = shifting_workload(500, 2, 40, n_groups=4, queries_per_shift=10)
        labels = [q.label for q in workload.queries]
        assert labels[:10] == [0] * 10
        assert labels[10:20] == [1] * 10
        assert labels[-1] == 3

    def test_wraps_when_longer_than_rotation(self):
        workload = shifting_workload(500, 2, 90, n_groups=4, queries_per_shift=10)
        assert workload.n_queries == 90
        assert workload.queries[40].label == 0  # wrapped around

    def test_queries_fit_group_domains(self):
        workload = shifting_workload(500, 2, 20, n_groups=2, queries_per_shift=10)
        for query in workload.queries:
            projected = workload.table.project(list(workload.groups[query.label]))
            assert (query.lows >= projected.minimums() - 1e-9).all()
            assert (query.highs <= projected.maximums() + 1e-9).all()

    def test_grouped_workload_validation(self):
        table = uniform_table(100, 4, seed=1)
        with pytest.raises(WorkloadError):
            Workload(
                name="bad",
                table=table,
                queries=[RangeQuery([0.0, 0.0], [1.0, 1.0])],  # missing label
                groups=[(0, 1), (2, 3)],
            )

    def test_invalid_parameters(self):
        with pytest.raises(WorkloadError):
            shifting_workload(100, 2, 10, n_groups=0)


class TestRealWorkloads:
    def test_power_shape(self):
        workload = power_workload(n_rows=3_000, n_queries=20)
        assert workload.table.n_columns == 3
        assert workload.n_queries == 20
        assert workload.metadata["simulated"]

    def test_skyserver_shape(self):
        workload = skyserver_workload(n_rows=3_000, n_queries=20)
        assert workload.table.n_columns == 2
        assert workload.table.names == ["ra", "dec"]
        ra = workload.table.column(0)
        assert ra.min() >= 0.0 and ra.max() <= 360.0

    def test_skyserver_queries_are_skewed(self):
        workload = skyserver_workload(n_rows=3_000, n_queries=200, seed=1)
        centres = np.array([(q.lows[0] + q.highs[0]) / 2 for q in workload.queries])
        # Hot clusters: the most popular 30-degree band holds many queries.
        histogram, _ = np.histogram(centres, bins=12, range=(0, 360))
        assert histogram.max() > 3 * max(1, histogram.mean())

    def test_genomics_shape(self):
        workload = genomics_workload(n_rows=3_000, n_queries=15)
        assert workload.table.n_columns == 19
        assert workload.n_queries == 15

    def test_genomics_queries_selective_conjunctions(self):
        workload = genomics_workload(n_rows=5_000, n_queries=10, seed=2)
        selectivities = [
            selectivity_of(workload.table, q) for q in workload.queries
        ]
        assert np.mean(selectivities) < 0.3  # stacked weak predicates

    def test_workload_repr(self):
        workload = power_workload(n_rows=1_000, n_queries=5)
        assert "Power" in repr(workload)

    def test_empty_workload_rejected(self):
        table = uniform_table(10, 1)
        with pytest.raises(WorkloadError):
            Workload(name="empty", table=table, queries=[])


class TestExtensionPatterns:
    def test_zoomin_windows_shrink(self):
        table = uniform_table(2_000, 2, seed=30)
        from repro.workloads.patterns import zoom_in_queries

        queries = zoom_in_queries(table, 20, 0.01, seed=31)
        extents = [q.highs[0] - q.lows[0] for q in queries]
        assert all(b <= a + 1e-9 for a, b in zip(extents, extents[1:]))
        assert extents[-1] < extents[0] / 5

    def test_zoomin_floors_at_selectivity(self):
        table = uniform_table(2_000, 2, seed=32)
        from repro.workloads.patterns import zoom_in_queries

        queries = zoom_in_queries(table, 60, 0.01, seed=33)
        span = table.maximums()[0] - table.minimums()[0]
        floor = span * per_dimension_selectivity(0.01, 2)
        assert queries[-1].highs[0] - queries[-1].lows[0] == pytest.approx(
            floor, rel=0.01
        )

    def test_zoomin_shrink_validated(self):
        table = uniform_table(100, 1, seed=34)
        from repro.workloads.patterns import zoom_in_queries

        with pytest.raises(WorkloadError):
            zoom_in_queries(table, 5, 0.01, shrink=1.5)

    def test_mixed_changes_character(self):
        table = uniform_table(2_000, 2, seed=35)
        from repro.workloads.patterns import mixed_queries

        queries = mixed_queries(table, 40, 0.01, seed=36, segment=10)
        assert len(queries) == 40
        # Segments differ: centres of different segments have different
        # dispersion characters (weak but deterministic check).
        first = np.array([q.lows[0] for q in queries[:10]])
        later = np.array([q.lows[0] for q in queries[10:20]])
        assert not np.allclose(first.std(), later.std(), rtol=1e-6)

    def test_mixed_segment_validated(self):
        table = uniform_table(100, 1, seed=37)
        from repro.workloads.patterns import mixed_queries

        with pytest.raises(WorkloadError):
            mixed_queries(table, 5, 0.01, segment=0)

    def test_extension_patterns_in_registry(self):
        assert "zoomin" in SYNTHETIC_PATTERNS
        assert "mixed" in SYNTHETIC_PATTERNS
        workload = make_synthetic_workload("zoomin", 500, 2, 10, seed=38)
        assert workload.name == "ZoomIn(2)"


class TestTablePassthrough:
    def test_make_synthetic_workload_reuses_table(self):
        table = uniform_table(800, 2, seed=50)
        workload = make_synthetic_workload(
            "uniform", 999_999, 2, 10, 0.01, seed=51, table=table
        )
        assert workload.table is table  # n_rows argument ignored when given
