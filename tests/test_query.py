"""RangeQuery: validation, semantics, and the adaptation pivot order."""

import numpy as np
import pytest

from repro import InvalidQueryError, RangeQuery


class TestConstruction:
    def test_basic(self):
        query = RangeQuery([1.0, 2.0], [3.0, 4.0])
        assert query.n_dims == 2
        assert query.lows[0] == 1.0
        assert query.highs[1] == 4.0

    def test_bounds_are_readonly(self):
        query = RangeQuery([1.0], [2.0])
        with pytest.raises(ValueError):
            query.lows[0] = 0.0

    def test_label_carried(self):
        query = RangeQuery([0.0], [1.0], label=3)
        assert query.label == 3

    def test_rejects_mismatched_lengths(self):
        with pytest.raises(InvalidQueryError):
            RangeQuery([1.0, 2.0], [3.0])

    def test_rejects_empty(self):
        with pytest.raises(InvalidQueryError):
            RangeQuery([], [])

    def test_rejects_inverted_bounds(self):
        with pytest.raises(InvalidQueryError):
            RangeQuery([5.0], [1.0])

    def test_rejects_nan(self):
        with pytest.raises(InvalidQueryError):
            RangeQuery([float("nan")], [1.0])
        with pytest.raises(InvalidQueryError):
            RangeQuery([0.0], [float("nan")])

    def test_rejects_two_dimensional_bounds(self):
        with pytest.raises(InvalidQueryError):
            RangeQuery([[1.0]], [[2.0]])

    def test_equal_bounds_allowed_but_empty(self):
        query = RangeQuery([1.0], [1.0])
        assert query.is_empty()

    def test_infinite_bounds_allowed(self):
        query = RangeQuery([-np.inf, 0.0], [np.inf, 1.0])
        assert not query.is_empty()


class TestAdaptationPairs:
    def test_paper_example_order(self):
        # 6 < A <= 13 AND 5 < B <= 8 -> (A,6), (B,5), (A,13), (B,8)
        query = RangeQuery([6.0, 5.0], [13.0, 8.0])
        assert list(query.adaptation_pairs()) == [
            (0, 6.0),
            (1, 5.0),
            (0, 13.0),
            (1, 8.0),
        ]

    def test_skips_infinite_bounds(self):
        query = RangeQuery([-np.inf, 5.0], [13.0, np.inf])
        assert list(query.adaptation_pairs()) == [(1, 5.0), (0, 13.0)]

    def test_bound_pairs(self):
        query = RangeQuery([1.0, 2.0], [3.0, 4.0])
        assert list(query.bound_pairs()) == [(0, 1.0, 3.0), (1, 2.0, 4.0)]


class TestGeometry:
    def test_intersects_box(self):
        query = RangeQuery([2.0, 2.0], [4.0, 4.0])
        assert query.intersects_box(np.array([0.0, 0.0]), np.array([3.0, 3.0]))
        assert not query.intersects_box(np.array([4.0, 0.0]), np.array([9.0, 9.0]))

    def test_box_touching_low_edge_excluded(self):
        # Piece holds x <= 2; query needs x > 2 -> no intersection.
        query = RangeQuery([2.0], [4.0])
        assert not query.intersects_box(np.array([0.0]), np.array([2.0]))

    def test_box_touching_high_edge_included(self):
        # Piece holds 4 < x; query needs x <= 4 -> no intersection.
        query = RangeQuery([2.0], [4.0])
        assert not query.intersects_box(np.array([4.0]), np.array([9.0]))


class TestEquality:
    def test_equal_queries(self):
        assert RangeQuery([1.0], [2.0]) == RangeQuery([1.0], [2.0])

    def test_unequal_queries(self):
        assert RangeQuery([1.0], [2.0]) != RangeQuery([1.0], [3.0])

    def test_hashable(self):
        seen = {RangeQuery([1.0], [2.0]), RangeQuery([1.0], [2.0])}
        assert len(seen) == 1

    def test_not_equal_to_other_types(self):
        assert RangeQuery([1.0], [2.0]) != "query"

    def test_repr_mentions_terms(self):
        text = repr(RangeQuery([6.0], [13.0]))
        assert "6" in text and "13" in text
