"""The differential fuzzer itself: clean runs, bug detection, shrinking,
and replay files.

The fuzzer is only trustworthy if (a) a healthy tree of backends comes
out clean, and (b) a genuinely buggy backend is detected, minimized to a
small reproducer, saved, and *replayable* — each half is pinned here,
with the same off-by-one injection the invariant tests use.
"""

import json
import os

import numpy as np
import pytest

from repro.core import partition
from repro.fuzz import (
    BACKENDS,
    WORKLOAD_KINDS,
    FuzzCase,
    FuzzFailure,
    build_workload,
    main,
    minimize_queries,
    replay,
    run_backend_case,
    run_fuzz,
)


def small_run(**overrides):
    settings = dict(
        seed=3, queries=10, rows=400, size_threshold=32, verbose=False,
        save_dir=None, log=lambda message: None,
    )
    settings.update(overrides)
    return run_fuzz(**settings)


# ------------------------------------------------------------ clean runs

def test_clean_run_reports_ok():
    report = small_run(backends=["fs", "akd", "pkd"], kinds=["uniform"])
    assert report.ok
    assert report.cases_run == 3
    assert report.queries_run == 30


def test_workloads_are_reproducible():
    case = FuzzCase(seed=5, kind="zoom", n_rows=200, n_dims=2, n_queries=8)
    table_a, queries_a = build_workload(case)
    table_b, queries_b = build_workload(case)
    for dim in range(2):
        assert np.array_equal(table_a.column(dim), table_b.column(dim))
    for first, second in zip(queries_a, queries_b):
        assert np.array_equal(first.lows, second.lows)
        assert np.array_equal(first.highs, second.highs)


@pytest.mark.parametrize("kind", WORKLOAD_KINDS)
def test_every_kind_builds_and_runs(kind):
    case = FuzzCase(seed=1, kind=kind, n_rows=200, n_dims=2, n_queries=5)
    table, queries = build_workload(case)
    assert table.n_rows == 200
    assert len(queries) == 5
    position, problems = run_backend_case("akd", table, queries, case)
    assert position is None, problems


def test_degenerate_kind_has_a_constant_column():
    case = FuzzCase(
        seed=2, kind="degenerate", n_rows=150, n_dims=3, n_queries=5
    )
    table, _ = build_workload(case)
    assert any(
        np.unique(table.column(dim)).size == 1 for dim in range(3)
    )


def test_cli_exit_zero_on_clean_run(capsys):
    status = main(
        [
            "--seed", "0", "--queries", "5", "--rows", "300",
            "--backends", "fs,akd", "--kinds", "uniform,duplicate",
        ]
    )
    assert status == 0
    assert "OK" in capsys.readouterr().out


def test_cli_rejects_unknown_backend_and_kind():
    with pytest.raises(SystemExit):
        main(["--queries", "2", "--rows", "100", "--backends", "nope"])
    with pytest.raises(SystemExit):
        main(["--queries", "2", "--rows", "100", "--kinds", "nope"])


# -------------------------------------------------------- bug detection

def _inject_off_by_one(monkeypatch):
    """The same boundary bug the invariant tests use, fuzzer-facing."""
    import repro.core.adaptive_kdtree as akd_module

    real = partition.stable_partition

    def broken(arrays, start, end, key_index, pivot):
        split = real(arrays, start, end, key_index, pivot)
        return split + 1 if start < split + 1 < end else split

    monkeypatch.setattr(akd_module, "stable_partition", broken)


def test_fuzzer_catches_injected_bug_and_saves_replay(
    monkeypatch, tmp_path
):
    """Acceptance criterion end-to-end: injected off-by-one -> failure
    found, minimized, saved; replay file reproduces; minimization
    shrank the workload."""
    _inject_off_by_one(monkeypatch)
    report = small_run(
        backends=["akd"],
        kinds=["uniform"],
        queries=20,
        save_dir=str(tmp_path),
    )
    assert not report.ok
    failure = report.failures[0]
    assert failure.backend == "akd"
    assert failure.problems
    # Shrinking: the reproducer is no larger than the failing prefix,
    # and for this always-hot bug it collapses to very few queries.
    assert 1 <= len(failure.query_indices) <= failure.query_position + 1
    assert len(failure.query_indices) <= 3

    path = str(tmp_path / "fuzz-failure-akd-uniform-seed3.json")
    assert os.path.exists(path)
    payload = json.loads(open(path).read())
    assert payload["backend"] == "akd"
    assert payload["case"]["kind"] == "uniform"

    # Replay, bug still present: reproduces (returns True).
    messages = []
    assert replay(path, log=messages.append)
    assert any("reproduces" in m for m in messages)


def test_replay_reports_fixed_bug_as_non_reproducing(tmp_path):
    """A replay file for a since-fixed bug comes back clean."""
    case = FuzzCase(
        seed=3, kind="uniform", n_rows=400, n_dims=2, n_queries=20,
        size_threshold=32,
    )
    failure = FuzzFailure(
        backend="akd", case=case, query_position=4,
        problems=["stale"], query_indices=[0, 4],
    )
    path = str(tmp_path / "stale.json")
    with open(path, "w") as handle:
        handle.write(failure.to_json())
    messages = []
    assert not replay(path, log=messages.append)
    assert any("no longer reproduces" in m for m in messages)


def test_cli_exit_one_on_injected_bug(monkeypatch, tmp_path, capsys):
    _inject_off_by_one(monkeypatch)
    status = main(
        [
            "--seed", "3", "--queries", "15", "--rows", "400",
            "--backends", "akd", "--kinds", "uniform",
            "--save-dir", str(tmp_path),
        ]
    )
    assert status == 1
    assert "FAILURE" in capsys.readouterr().out


def test_minimizer_preserves_failure(monkeypatch):
    _inject_off_by_one(monkeypatch)
    case = FuzzCase(
        seed=3, kind="uniform", n_rows=400, n_dims=2, n_queries=20,
        size_threshold=32,
    )
    table, queries = build_workload(case)
    position, _ = run_backend_case("akd", table, queries, case)
    assert position is not None
    kept = minimize_queries("akd", table, queries, case, position)
    final_position, problems = run_backend_case(
        "akd", table, [queries[i] for i in kept], case
    )
    assert final_position is not None, "minimized workload must still fail"
    assert problems


def test_answer_mismatch_is_reported_distinctly():
    """A backend returning wrong rows (not just a broken structure) is
    reported as an answer mismatch against the full-scan reference."""

    class LyingFullScan:
        def __init__(self, table):
            self._inner = BACKENDS["fs"](table, None)

        def __getattr__(self, attribute):
            return getattr(self._inner, attribute)

        def query(self, query):
            result = self._inner.query(query)
            result.row_ids = result.row_ids[1:]  # drop one matching row
            return result

    case = FuzzCase(
        seed=4, kind="uniform", n_rows=300, n_dims=2, n_queries=10
    )
    table, queries = build_workload(case)
    BACKENDS["lying"] = lambda table, case: LyingFullScan(table)
    try:
        position, problems = run_backend_case("lying", table, queries, case)
    finally:
        del BACKENDS["lying"]
    assert position is not None
    assert any("answer mismatch" in p for p in problems)


# --------------------------------------------------- multi-session fuzzing


def test_session_fuzz_clean_run():
    """A fleet of healthy sessions interleaved over one shared table
    comes out with zero answer mismatches and zero invariant problems."""
    from repro.fuzz import run_session_fuzz

    problems = run_session_fuzz(
        seed=1, sessions=4, steps=40, rows=800, dims=2,
        size_threshold=32, log=lambda message: None,
    )
    assert problems == []


def test_session_fuzz_cycles_all_techniques():
    """With >= len(SESSION_TECHNIQUES) sessions every technique gets a
    seat, so cross-technique interference is actually exercised."""
    from repro.fuzz import SESSION_TECHNIQUES, run_session_fuzz

    assert len(set(SESSION_TECHNIQUES)) >= 4
    problems = run_session_fuzz(
        seed=2, sessions=len(SESSION_TECHNIQUES), steps=25, rows=600,
        dims=2, size_threshold=32, log=lambda message: None,
    )
    assert problems == []


def test_session_fuzz_cli_exit_zero(capsys):
    status = main(
        [
            "--sessions", "3", "--queries", "20", "--rows", "500",
            "--seed", "4", "--size-threshold", "32",
        ]
    )
    assert status == 0
    assert "fuzz --sessions 3: OK" in capsys.readouterr().out
