"""Partitioning kernels: stability, in-place invariants, pausability."""

import numpy as np
import pytest

from repro.core.partition import IncrementalPartition, stable_partition
from repro.errors import InvalidParameterError


def make_rows(n, seed=0, low=0, high=100):
    rng = np.random.default_rng(seed)
    keys = rng.integers(low, high, n).astype(np.float64)
    payload = rng.random(n)
    rowids = np.arange(n, dtype=np.int64)
    return keys, payload, rowids


def check_partitioned(keys, start, split, end, pivot):
    assert (keys[start:split] <= pivot).all()
    assert (keys[split:end] > pivot).all()


class TestStablePartition:
    def test_basic(self):
        keys, payload, rowids = make_rows(200, seed=1)
        snapshot = keys.copy()
        split = stable_partition([keys, payload, rowids], 0, 200, 0, 50.0)
        check_partitioned(keys, 0, split, 200, 50.0)
        assert split == int((snapshot <= 50.0).sum())

    def test_rows_stay_aligned(self):
        keys, payload, rowids = make_rows(300, seed=2)
        pairs_before = {int(r): (k, p) for k, p, r in zip(keys, payload, rowids)}
        stable_partition([keys, payload, rowids], 0, 300, 0, 42.0)
        for k, p, r in zip(keys, payload, rowids):
            assert pairs_before[int(r)] == (k, p)

    def test_stability(self):
        # Equal-key rows keep their relative order on each side.
        keys = np.array([5.0, 1.0, 5.0, 1.0, 5.0, 9.0])
        rowids = np.arange(6, dtype=np.int64)
        stable_partition([keys, rowids], 0, 6, 0, 4.0)
        left_ids = rowids[:2]
        right_ids = rowids[2:]
        assert list(left_ids) == [1, 3]
        assert list(right_ids) == [0, 2, 4, 5]

    def test_subrange_untouched_outside(self):
        keys, payload, rowids = make_rows(100, seed=3)
        before_head = keys[:10].copy()
        before_tail = keys[90:].copy()
        stable_partition([keys, payload, rowids], 10, 90, 0, 50.0)
        assert np.array_equal(keys[:10], before_head)
        assert np.array_equal(keys[90:], before_tail)

    def test_all_left(self):
        keys = np.array([1.0, 2.0, 3.0])
        split = stable_partition([keys], 0, 3, 0, 10.0)
        assert split == 3

    def test_all_right(self):
        keys = np.array([5.0, 6.0, 7.0])
        split = stable_partition([keys], 0, 3, 0, 1.0)
        assert split == 0

    def test_empty_range(self):
        keys = np.array([1.0])
        assert stable_partition([keys], 1, 1, 0, 0.5) == 1

    def test_pivot_column_selectable(self):
        keys0 = np.array([1.0, 9.0, 1.0, 9.0])
        keys1 = np.array([9.0, 1.0, 9.0, 1.0])
        split = stable_partition([keys0, keys1], 0, 4, 1, 5.0)
        assert split == 2
        check_partitioned(keys1, 0, split, 4, 5.0)


class TestIncrementalPartition:
    def test_run_to_completion(self):
        keys, payload, rowids = make_rows(500, seed=4)
        job = IncrementalPartition([keys, payload, rowids], 0, 500, 0, 50.0)
        job.run_to_completion()
        assert job.done
        check_partitioned(keys, 0, job.split, 500, 50.0)

    @pytest.mark.parametrize("budget", [1, 2, 3, 7, 16, 100, 10_000])
    def test_any_budget_schedule(self, budget):
        keys, payload, rowids = make_rows(400, seed=5)
        job = IncrementalPartition([keys, payload, rowids], 0, 400, 0, 50.0)
        while not job.done:
            used = job.advance(budget)
            assert used > 0  # forward progress guaranteed
        check_partitioned(keys, 0, job.split, 400, 50.0)

    def test_invariant_holds_mid_flight(self):
        keys, payload, rowids = make_rows(600, seed=6)
        job = IncrementalPartition([keys, payload, rowids], 0, 600, 0, 50.0)
        while not job.done:
            job.advance(37)
            assert (keys[: job.lo] <= 50.0).all()
            assert (keys[job.hi :] > 50.0).all()

    def test_rows_stay_aligned_through_pauses(self):
        keys, payload, rowids = make_rows(350, seed=7)
        pairs_before = {int(r): (k, p) for k, p, r in zip(keys, payload, rowids)}
        job = IncrementalPartition([keys, payload, rowids], 0, 350, 0, 40.0)
        while not job.done:
            job.advance(11)
        for k, p, r in zip(keys, payload, rowids):
            assert pairs_before[int(r)] == (k, p)

    def test_same_result_as_full_scan_count(self):
        keys, payload, rowids = make_rows(256, seed=8)
        expected_left = int((keys <= 30.0).sum())
        job = IncrementalPartition([keys, payload, rowids], 0, 256, 0, 30.0)
        while not job.done:
            job.advance(13)
        assert job.split == expected_left

    def test_subrange(self):
        keys, payload, rowids = make_rows(200, seed=9)
        head = keys[:50].copy()
        tail = keys[150:].copy()
        job = IncrementalPartition([keys, payload, rowids], 50, 150, 0, 50.0)
        job.run_to_completion()
        check_partitioned(keys, 50, job.split, 150, 50.0)
        assert np.array_equal(keys[:50], head)
        assert np.array_equal(keys[150:], tail)

    def test_all_one_side(self):
        keys = np.full(64, 7.0)
        job = IncrementalPartition([keys], 0, 64, 0, 10.0)
        job.run_to_completion()
        assert job.split == 64
        job2 = IncrementalPartition([keys], 0, 64, 0, 1.0)
        job2.run_to_completion()
        assert job2.split == 0

    def test_single_row(self):
        keys = np.array([5.0])
        job = IncrementalPartition([keys], 0, 1, 0, 4.0)
        job.run_to_completion()
        assert job.split == 0

    def test_empty_is_immediately_done(self):
        keys = np.array([])
        job = IncrementalPartition([keys], 0, 0, 0, 1.0)
        assert job.done
        assert job.advance(10) == 0

    def test_zero_budget_no_work(self):
        keys, payload, rowids = make_rows(64, seed=10)
        snapshot = keys.copy()
        job = IncrementalPartition([keys, payload, rowids], 0, 64, 0, 50.0)
        assert job.advance(0) == 0
        assert np.array_equal(keys, snapshot)

    def test_invalid_range_rejected(self):
        with pytest.raises(InvalidParameterError):
            IncrementalPartition([np.arange(3.0)], 2, 1, 0, 0.0)

    def test_remaining_rows_monotone(self):
        keys, payload, rowids = make_rows(300, seed=11)
        job = IncrementalPartition([keys, payload, rowids], 0, 300, 0, 50.0)
        remaining = job.remaining_rows
        while not job.done:
            job.advance(23)
            assert job.remaining_rows <= remaining
            remaining = job.remaining_rows
        assert job.remaining_rows == 0
