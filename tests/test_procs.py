"""The process-parallel tier (:mod:`repro.parallel.shm` + procpool).

The contract mirrors the thread tier's (see ``test_parallel.py``) with
one more moving part: table columns live in shared-memory segments,
workers attach zero-copy views, and refinement advances mutate shared
rows directly.  The load-bearing claims are bit-identity of answers and
converged structures against serial for every backend, and leak-free
segment lifecycle (no stray ``/dev/shm`` entries, no zombie workers).

Process-pool runs here keep the pool warm across tests — a spawn per
test would dominate the suite's runtime — and the module teardown joins
all workers and asserts nothing leaked.
"""

from __future__ import annotations

import gc
import os

import numpy as np
import pytest

from repro.core import GreedyProgressiveKDTree, RangeQuery, Table
from repro.core.metrics import QueryStats
from repro.errors import InvalidParameterError
from repro.fuzz import BACKENDS, FuzzCase, build_workload, make_backend
from repro.invariants import InvariantMonitor
from repro.parallel import config as par_config
from repro.parallel import executor, procpool
from repro.parallel import shm
from repro.session import ExplorationSession

COUNTER_FIELDS = (
    "scanned", "copied", "swapped", "lookup_nodes", "nodes_created",
    "pruned", "contained",
)


@pytest.fixture(autouse=True)
def procs_reset():
    """Restore worker counts, thresholds, and the ownership log."""
    procs = procpool.get_process_workers()
    workers = par_config.get_workers()
    morsel, floor = par_config.MORSEL_ROWS, par_config.MIN_PARALLEL_ROWS
    par_config.reset_ownership_log()
    yield
    procpool.set_process_workers(procs)
    par_config.set_workers(workers)
    par_config.MORSEL_ROWS = morsel
    par_config.MIN_PARALLEL_ROWS = floor
    par_config.reset_ownership_log()


@pytest.fixture(scope="module", autouse=True)
def pool_lifecycle():
    """Join every worker at module end; no zombies, no stray segments."""
    yield
    procpool.set_process_workers(1)
    procpool.shutdown_procs()
    gc.collect()  # run block finalizers of dead tables/indexes
    assert shm.live_segments() == []


def lower_thresholds():
    par_config.MORSEL_ROWS = 256
    par_config.MIN_PARALLEL_ROWS = 256


def counters_of(stats: QueryStats) -> tuple:
    return tuple(getattr(stats, field) for field in COUNTER_FIELDS)


# ------------------------------------------------------------- configuration

class TestProcConfig:
    def test_set_process_workers_roundtrip(self):
        assert procpool.set_process_workers(3) == 3
        assert procpool.get_process_workers() == 3
        procpool.set_process_workers(1)
        assert procpool.get_process_workers() == 1

    @pytest.mark.parametrize("bad", [0, -2, "many", None])
    def test_set_process_workers_rejects(self, bad):
        with pytest.raises(InvalidParameterError):
            procpool.set_process_workers(bad)

    def test_env_parsing(self, monkeypatch):
        monkeypatch.setenv("REPRO_PROCS", "4")
        assert procpool._procs_from_env() == 4
        monkeypatch.setenv("REPRO_PROCS", "auto")
        assert procpool._procs_from_env() == max(1, os.cpu_count() or 1)
        monkeypatch.setenv("REPRO_PROCS", "zero")
        with pytest.warns(UserWarning):
            assert procpool._procs_from_env() == 1
        monkeypatch.delenv("REPRO_PROCS")
        assert procpool._procs_from_env() == 1

    def test_parent_is_not_a_worker(self):
        assert not procpool.in_proc_worker()

    def test_fanout_workers_is_max_of_tiers(self):
        par_config.set_workers(2)
        procpool.set_process_workers(3)
        assert par_config.fanout_workers() == 3
        procpool.set_process_workers(1)
        assert par_config.fanout_workers() == 2
        par_config.set_workers(1)
        assert par_config.fanout_workers() == 1

    def test_warm_up_reaches_distinct_processes(self):
        procpool.set_process_workers(2)
        pids = procpool.warm_up()
        assert pids and os.getpid() not in pids

    def test_session_rejects_bad_procs(self):
        with pytest.raises(InvalidParameterError):
            ExplorationSession(procs=0)


# --------------------------------------------------------------------- shm

class TestSharedMemory:
    def test_share_round_trip(self):
        source = [np.arange(100, dtype=np.float64), np.ones(7)]
        block = shm.share_arrays(source)
        try:
            for view, original in zip(block.arrays, source):
                assert np.array_equal(view, original)
                assert view is not original
            handles = shm.handles_of(block.arrays)
            assert handles is not None
            # Attach maps the same physical bytes (same process here).
            attached = shm.attach(handles[0])
            attached[0] = -5.0
            assert block.arrays[0][0] == -5.0
        finally:
            shm.detach_all()
            block.release()
        assert block.shm.name not in shm.live_segments()

    def test_empty_arrays_alignment(self):
        block = shm.empty_arrays([(3, np.float64), (5, np.int64)])
        try:
            for handle in block.handles:
                assert handle.offset % 64 == 0
            block.arrays[1][:] = np.arange(5)
            assert np.array_equal(block.arrays[1], np.arange(5))
        finally:
            block.release()

    def test_release_is_idempotent(self):
        block = shm.share_arrays([np.zeros(4)])
        block.release()
        block.release()
        assert block.shm.name not in shm.live_segments()

    def test_handles_of_rejects_unregistered(self):
        plain = np.zeros(8)
        assert shm.handle_of(plain) is None
        block = shm.share_arrays([np.zeros(8)])
        try:
            assert shm.handles_of([block.arrays[0], plain]) is None
        finally:
            block.release()

    def test_register_view_offset_arithmetic(self):
        base = np.arange(64, dtype=np.float64)
        block = shm.share_arrays([base])
        try:
            shared = block.arrays[0]
            view = shared[16:48]
            handle = shm.register_view(view, shared)
            assert handle is not None
            assert handle.length == 32
            assert handle.offset == shm.handle_of(shared).offset + 16 * 8
            assert np.array_equal(shm.attach(handle), shared[16:48])
        finally:
            shm.detach_all()
            block.release()

    def test_register_view_rejects_copies_and_unshared(self):
        base = np.arange(16, dtype=np.float64)
        assert shm.register_view(base[2:8], base) is None  # base not shared
        block = shm.share_arrays([base])
        try:
            copy = block.arrays[0][2:8].copy()
            assert shm.register_view(copy, block.arrays[0]) is None
        finally:
            block.release()

    def test_adopt_releases_with_owner(self):
        class Owner:
            pass

        owner = Owner()
        block = shm.adopt(owner, shm.share_arrays([np.zeros(16)]))
        name = block.shm.name
        assert name in shm.live_segments()
        del owner
        gc.collect()
        assert name not in shm.live_segments()

    def test_table_share_is_idempotent(self):
        table = Table([np.arange(32, dtype=np.float64)])
        assert table.share()
        first = shm.handles_of(table.columns())
        assert table.share()
        assert shm.handles_of(table.columns()) == first

    def test_no_dev_shm_strays_after_release(self):
        block = shm.share_arrays([np.zeros(1024)])
        name = block.shm.name
        if os.path.isdir("/dev/shm"):
            assert any(name in entry for entry in os.listdir("/dev/shm"))
        block.release()
        if os.path.isdir("/dev/shm"):
            assert not any(name in entry for entry in os.listdir("/dev/shm"))


# ------------------------------------------------------------ proc scan path

class TestProcScanRange:
    def test_proc_scan_is_bit_identical(self):
        rng = np.random.default_rng(5)
        n = 4_000
        block = shm.share_arrays([rng.random(n) for _ in range(2)])
        try:
            columns = block.arrays
            query = RangeQuery([0.2, 0.1], [0.8, 0.9])

            par_config.set_workers(1)
            procpool.set_process_workers(1)
            serial_stats = QueryStats()
            serial = executor.scan_range(columns, 0, n, query, serial_stats)

            lower_thresholds()
            procpool.set_process_workers(2)
            proc_stats = QueryStats()
            positions = executor.scan_range(columns, 0, n, query, proc_stats)

            assert np.array_equal(serial, positions)
            assert counters_of(serial_stats) == counters_of(proc_stats)
        finally:
            block.release()

    def test_unshared_columns_fall_back(self):
        # Plain heap arrays cannot ship to workers: the scan must still
        # answer (serial fall-through), not fail.
        rng = np.random.default_rng(6)
        n = 4_000
        columns = [rng.random(n) for _ in range(2)]
        query = RangeQuery([0.2, 0.1], [0.8, 0.9])
        lower_thresholds()
        par_config.set_workers(1)
        procpool.set_process_workers(2)
        stats = QueryStats()
        positions = executor.scan_range(columns, 0, n, query, stats)
        procpool.set_process_workers(1)
        want = executor.scan_range(columns, 0, n, query, QueryStats())
        assert np.array_equal(positions, want)

    def test_worker_scans_inside_worker_stay_serial(self):
        # _procs_eligible must refuse nested fan-out.
        procpool.set_process_workers(2)
        par_config.enter_worker()
        try:
            assert executor._procs_eligible() == 0
        finally:
            par_config.exit_worker()
        assert executor._procs_eligible() == 2


# --------------------------------------------------------- cross-backend I/O

def run_case_procs(backend, procs, n_queries=12):
    """Answers + counters + converged signature under ``procs`` workers.

    The table is shared and the index built *after* the proc count is
    set, so index tables allocate into shm and the whole query path can
    dispatch to workers.  Same workload discipline as the thread-tier
    ``run_case``: duplicate integer data keeps mean pivots rounding-free,
    and progressive trees are compared only at convergence.
    """
    par_config.set_workers(1)
    procpool.set_process_workers(procs)
    if procs > 1:
        lower_thresholds()
    case = FuzzCase(
        seed=2, kind="duplicate", n_rows=1200, n_dims=2,
        n_queries=n_queries, size_threshold=64, delta=0.25,
    )
    table, queries = build_workload(case)
    table.share()
    index = make_backend(backend, table, case)
    monitor = InvariantMonitor(index)
    answers = []
    trail = []
    for query in queries:
        result = index.query(query)
        answers.append(tuple(np.sort(result.row_ids).tolist()))
        trail.append(counters_of(result.stats))
        problems = monitor.observe()
        assert problems == [], f"{backend} procs={procs}: {problems[:3]}"
    if backend in ("pkd", "gpkd"):
        probe = RangeQuery([-np.inf] * 2, [np.inf] * 2)
        spins = 0
        while not index.converged and spins < 400:
            index.query(probe)
            spins += 1
        assert index.converged, f"{backend} procs={procs} never converged"
    tree = getattr(index, "tree", None)
    signature = tree.preorder_signature() if tree is not None else None
    return answers, trail, signature


class TestBitIdentity:
    """Every backend under 2 process workers: identical answers and
    converged structure vs the serial run (the acceptance claim)."""

    @pytest.mark.parametrize("backend", sorted(BACKENDS))
    def test_backend_matches_serial(self, backend):
        serial = run_case_procs(backend, 1)
        parallel = run_case_procs(backend, 2)
        assert serial[0] == parallel[0], "answers diverged"
        if backend not in ("pkd", "gpkd"):
            # Progressive backends schedule several pieces per round
            # when fanning out, shifting per-query charges between
            # queries; their claim is answers + converged structure.
            assert serial[1] == parallel[1], "work counters diverged"
        assert serial[2] == parallel[2], "converged structure diverged"


# ------------------------------------------------------------ proc refinement

class TestProcRefinement:
    def test_gpkd_converges_on_proc_tier(self):
        par_config.set_workers(1)
        lower_thresholds()
        procpool.set_process_workers(2)
        rng = np.random.default_rng(11)
        table = Table(
            [rng.integers(0, 500, 6_000).astype(np.float64) for _ in range(2)]
        )
        table.share()
        index = GreedyProgressiveKDTree(table, delta=0.4, size_threshold=128)
        monitor = InvariantMonitor(index)
        probe = RangeQuery([-np.inf] * 2, [np.inf] * 2)
        spins = 0
        while not index.converged and spins < 400:
            index.query(probe)
            problems = monitor.observe()
            assert problems == [], problems[:3]
            spins += 1
        assert index.converged
        assert par_config.ownership_violations() == []
        assert par_config.owned_pieces() == []

    def test_shared_mutations_visible_in_parent(self):
        # A refinement advance in a worker reorders rows the parent sees.
        block = shm.share_arrays(
            [np.array([5.0, 1.0, 4.0, 2.0, 3.0]),
             np.arange(5, dtype=np.int64).astype(np.float64)]
        )
        try:
            procpool.set_process_workers(2)
            handles = shm.handles_of(block.arrays)
            used, lo, hi, done = procpool.proc_pool().submit(
                procpool.advance_task,
                "numpy", handles, 0, 5, 0, 3.0, 0, 5, 100,
            ).result()
            assert done
            assert used > 0
            key = block.arrays[0]
            split = np.searchsorted(np.sort(key), 3.0, side="right")
            assert (key[:split] <= 3.0).all()
            assert (key[split:] > 3.0).all()
        finally:
            block.release()


# ----------------------------------------------------------------- sessions

class TestSessionProcs:
    def run_session(self, procs, shards=1):
        par_config.set_workers(1)
        lower_thresholds()
        rng = np.random.default_rng(3)
        columns = {
            "x": rng.integers(0, 900, 8_000).astype(np.float64),
            "y": rng.integers(0, 900, 8_000).astype(np.float64),
        }
        session = ExplorationSession(
            technique="greedy", size_threshold=128,
            procs=procs, shards=shards,
        )
        session.register("t", columns)
        answers = []
        query_rng = np.random.default_rng(9)
        for _ in range(12):
            lows = query_rng.random(2) * 600
            result = session.query(
                "t", x=(lows[0], lows[0] + 250), y=(lows[1], lows[1] + 250)
            )
            answers.append(tuple(np.sort(result.row_ids).tolist()))
        return answers

    def test_session_procs_answers_match_serial(self):
        assert self.run_session(procs=1) == self.run_session(procs=2)

    def test_session_procs_and_shards_compose(self):
        plain = self.run_session(procs=1)
        assert plain == self.run_session(procs=2, shards=3)
        assert plain == self.run_session(procs=1, shards=3)
