"""``python -m repro.obs`` — the record/report/convergence/diff round trip."""

from __future__ import annotations

import pytest

import repro.obs as obs
from repro.core.metrics import PHASES
from repro.obs.__main__ import main
from repro.obs.aggregate import summarize
from repro.obs.sink import read_trace


@pytest.fixture(autouse=True)
def obs_off():
    obs.disable()
    obs.REGISTRY.reset()
    yield
    obs.disable()
    obs.REGISTRY.reset()


@pytest.fixture(scope="module")
def gpkd_trace(tmp_path_factory):
    """A small recorded GPKD run, shared across the module's tests."""
    path = tmp_path_factory.mktemp("traces") / "gpkd.jsonl"
    code = main([
        "record", "--index", "GPKD", "--rows", "4000", "--queries", "12",
        "--size-threshold", "128", "--seed", "5", "--out", str(path),
    ])
    assert code == 0
    return path


class TestRecord:
    def test_trace_is_self_describing(self, gpkd_trace):
        records = read_trace(gpkd_trace)
        meta = records[0]
        assert meta["type"] == "meta"
        assert meta["meta"]["index"] == "GPKD"
        assert meta["meta"]["size_threshold"] == 128
        assert "repro_version" in meta["meta"]
        assert "kernels" in meta["meta"]

    def test_one_query_span_per_query(self, gpkd_trace):
        summary = summarize(read_trace(gpkd_trace))
        assert len(summary.queries) == 12
        assert summary.indexes == ["GPKD"]
        # Query numbers are the workload positions, in order.
        assert [q.number for q in summary.queries] == list(range(12))

    def test_record_prints_round_trip_hint(self, gpkd_trace, capsys):
        code = main(["report", str(gpkd_trace)])
        assert code == 0


class TestReport:
    def test_report_shows_four_phase_breakdown(self, gpkd_trace, capsys):
        assert main(["report", str(gpkd_trace)]) == 0
        out = capsys.readouterr().out
        for phase in PHASES:
            assert phase in out
        assert "Fig. 6c" in out
        assert "Work counters" in out
        assert "seconds per query" in out

    def test_report_phase_seconds_attributed(self, gpkd_trace):
        summary = summarize(read_trace(gpkd_trace))
        totals = summary.phase_totals()
        # GPKD spends real time adapting and scanning on every run.
        assert totals["adaptation"] > 0.0
        assert totals["scan"] > 0.0
        # Attributed phase time never exceeds gross query time.
        assert sum(totals.values()) <= summary.total_seconds() * 1.01

    def test_report_width_height_flags(self, gpkd_trace, capsys):
        assert main(["report", str(gpkd_trace), "--width", "40",
                     "--height", "8", "--logy"]) == 0
        assert "seconds per query" in capsys.readouterr().out


class TestConvergence:
    def test_convergence_view(self, gpkd_trace, capsys):
        assert main(["convergence", str(gpkd_trace)]) == 0
        out = capsys.readouterr().out
        assert "Convergence trajectory" in out
        assert "size_threshold" in out
        assert "max_leaf" in out

    def test_structure_gauges_decay(self, gpkd_trace):
        summary = summarize(read_trace(gpkd_trace))
        max_leaves = [q.attrs.get("max_leaf") for q in summary.queries]
        # No tree gauges while GPKD is still in its creation phase; once
        # the tree exists they are present on every later query.
        tail = [v for v in max_leaves if v is not None]
        assert tail, "no max_leaf gauges recorded at all"
        first = max_leaves.index(tail[0])
        assert all(v is not None for v in max_leaves[first:])
        # Refinement never grows the largest piece.
        assert tail == sorted(tail, reverse=True)
        assert summary.queries[-1].attrs["size_threshold"] == 128


class TestDiff:
    def test_diff_two_traces(self, gpkd_trace, tmp_path, capsys):
        from repro import kernels

        other = tmp_path / "akd.jsonl"
        previous = kernels.active_name()
        try:
            assert main([
                "record", "--index", "AKD", "--rows", "4000", "--queries",
                "12", "--size-threshold", "128", "--seed", "5", "--kernels",
                "reference", "--out", str(other),
            ]) == 0
        finally:
            kernels.use(previous)
        capsys.readouterr()
        assert main(["diff", str(gpkd_trace), str(other)]) == 0
        out = capsys.readouterr().out
        assert "Trace diff" in out
        assert "phase adaptation s" in out
        # Same workload on both sides: the identical query count shows
        # up as an exact 1.000x ratio row.
        assert "1.000x" in out

    def test_diff_missing_file_errors(self, gpkd_trace, tmp_path):
        with pytest.raises(SystemExit):
            main(["diff", str(gpkd_trace), str(tmp_path / "missing.jsonl")])


class TestBadInput:
    def test_report_missing_file(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["report", str(tmp_path / "nope.jsonl")])

    def test_report_corrupt_jsonl(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"type": "meta"}\nnot json\n')
        with pytest.raises(SystemExit):
            main(["report", str(path)])

    def test_empty_trace_renders_gracefully(self, tmp_path, capsys):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        assert main(["report", str(path)]) == 0
        assert "no query spans" in capsys.readouterr().out
