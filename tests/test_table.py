"""Table: DSM construction, projection, and statistics."""

import numpy as np
import pytest

from repro import InvalidTableError, Table


class TestConstruction:
    def test_from_columns(self):
        table = Table([np.arange(5.0), np.ones(5)])
        assert table.n_rows == 5
        assert table.n_columns == 2
        assert table.names == ["c0", "c1"]

    def test_from_matrix(self):
        table = Table.from_matrix(np.arange(12.0).reshape(4, 3))
        assert table.n_rows == 4
        assert table.n_columns == 3
        assert table.column(1)[0] == 1.0

    def test_from_dict(self):
        table = Table.from_dict({"a": np.arange(3.0), "b": np.ones(3)})
        assert table.names == ["a", "b"]
        assert table.column_by_name("b")[2] == 1.0

    def test_custom_names(self):
        table = Table([np.arange(2.0)], names=["x"])
        assert table.names == ["x"]

    def test_converts_to_float(self):
        table = Table([np.array([1, 2, 3])])
        assert table.column(0).dtype == np.float64

    def test_rejects_empty_schema(self):
        with pytest.raises(InvalidTableError):
            Table([])

    def test_rejects_ragged_columns(self):
        with pytest.raises(InvalidTableError):
            Table([np.arange(3.0), np.arange(4.0)])

    def test_rejects_matrix_wrong_ndim(self):
        with pytest.raises(InvalidTableError):
            Table.from_matrix(np.arange(3.0))

    def test_rejects_two_dimensional_column(self):
        with pytest.raises(InvalidTableError):
            Table([np.ones((2, 2))])

    def test_rejects_wrong_name_count(self):
        with pytest.raises(InvalidTableError):
            Table([np.arange(2.0)], names=["a", "b"])

    def test_rejects_duplicate_names(self):
        with pytest.raises(InvalidTableError):
            Table([np.arange(2.0), np.arange(2.0)], names=["a", "a"])

    def test_unknown_name_lookup(self):
        table = Table([np.arange(2.0)])
        with pytest.raises(InvalidTableError):
            table.column_by_name("missing")


class TestAccess:
    def test_len(self):
        assert len(Table([np.arange(7.0)])) == 7

    def test_row_reconstruction(self):
        table = Table([np.array([1.0, 2.0]), np.array([3.0, 4.0])])
        assert list(table.row(1)) == [2.0, 4.0]

    def test_copy_columns_are_independent(self):
        table = Table([np.arange(3.0)])
        copies = table.copy_columns()
        copies[0][0] = 99.0
        assert table.column(0)[0] == 0.0

    def test_columns_returns_views(self):
        table = Table([np.arange(3.0)])
        assert table.columns()[0] is table.column(0)

    def test_project(self):
        table = Table(
            [np.arange(3.0), np.ones(3), np.zeros(3)], names=["a", "b", "c"]
        )
        projected = table.project([2, 0])
        assert projected.names == ["c", "a"]
        assert projected.column(1)[2] == 2.0

    def test_project_shares_storage(self):
        table = Table([np.arange(3.0)])
        assert table.project([0]).column(0) is table.column(0)

    def test_project_empty_rejected(self):
        with pytest.raises(InvalidTableError):
            Table([np.arange(3.0)]).project([])


class TestStatistics:
    def test_minimums_maximums_means(self):
        table = Table([np.array([1.0, 3.0]), np.array([10.0, 20.0])])
        assert list(table.minimums()) == [1.0, 10.0]
        assert list(table.maximums()) == [3.0, 20.0]
        assert list(table.means()) == [2.0, 15.0]

    def test_repr(self):
        assert "2 rows" in repr(Table([np.arange(2.0)]))
