"""The example scripts run end-to-end at reduced scale."""

import importlib.util
import os
import sys

import pytest

EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), "..", "examples")


def load_example(name):
    path = os.path.join(EXAMPLES_DIR, name)
    spec = importlib.util.spec_from_file_location(name[:-3], path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestExamplesRun:
    def test_quickstart(self, capsys):
        module = load_example("quickstart.py")
        module.main(n_rows=5_000, n_queries=6)
        out = capsys.readouterr().out
        assert "Index state after the workload" in out
        assert "AKD" in out and "GPKD" in out

    def test_exploratory_session(self, capsys):
        module = load_example("exploratory_session.py")
        module.main(n_rows=8_000)
        out = capsys.readouterr().out
        assert "broad sweep" in out
        assert "drill-down" in out
        assert "budget violations" in out

    def test_skyserver_hotspots(self, capsys):
        module = load_example("skyserver_hotspots.py")
        module.main(n_rows=8_000, n_queries=60)
        out = capsys.readouterr().out
        assert "== Q ==" in out
        assert "index pieces" in out

    def test_interactivity_threshold(self, capsys):
        module = load_example("interactivity_threshold.py")
        module.main(n_rows=8_000, n_queries=25)
        out = capsys.readouterr().out
        assert "queries above tau" in out
        assert "GPFQ(10)" in out

    def test_every_example_has_a_main(self):
        for name in os.listdir(EXAMPLES_DIR):
            if name.endswith(".py"):
                module = load_example(name)
                assert callable(getattr(module, "main", None)), name

    def test_approximate_explore(self, capsys):
        module = load_example("approximate_explore.py")
        module.main(n_rows=10_000, n_queries=8)
        out = capsys.readouterr().out
        assert "support" in out
        assert "interval contained the truth" in out

    def test_index_lifecycle(self, capsys):
        module = load_example("index_lifecycle.py")
        module.main(n_rows=8_000)
        out = capsys.readouterr().out
        assert "profile the workload" in out
        assert "persist and reload" in out
        assert "evolve the data" in out
