"""The flat-arena mirror and vectorized batch execution.

Three contracts, in increasing scope:

* **Arena structure** — the SoA mirror tracks the object graph split for
  split (I11), keeps the ``right == left + 1`` adjacency, and its scalar
  and batched descents agree with each other node for node.
* **Bit-identity** — with the arena on, every backend answers every
  query with the same rows, the same :class:`QueryStats` counters, and
  the same converged tree signature as the pure object-graph path,
  mid-refinement and post-convergence, under serial, thread-parallel,
  and process-parallel execution.
* **Batch execution** — ``query_batch`` answers exactly like the
  equivalent sequential loop (any backend, any phase), and the session
  layer's ``run_batch`` preserves per-query order across column groups.
"""

from __future__ import annotations

import gc

import numpy as np
import pytest

from repro.baselines import MedianKDTree
from repro.core import GreedyProgressiveKDTree, RangeQuery
from repro.core.arena import Arena, arena_default, set_arena_default
from repro.core.kdtree import KDTree
from repro.core.metrics import QueryStats
from repro.errors import IndexStateError
from repro.fuzz import BACKENDS, FuzzCase, build_workload, make_backend
from repro.invariants import assert_invariants
from repro.parallel import config as par_config
from repro.parallel import procpool
from tests.conftest import make_queries, make_uniform_table, reference_answer

ALL_BACKENDS = sorted(BACKENDS)

#: Deterministic per-query counters (time fields excluded on purpose).
COUNTER_FIELDS = (
    "scanned", "copied", "swapped", "lookup_nodes", "nodes_created",
    "result_count", "pruned", "contained", "delta_used", "converged",
)


@pytest.fixture(autouse=True)
def arena_reset():
    """Restore the process-global arena default and parallel knobs."""
    default = arena_default()
    workers = par_config.get_workers()
    morsel, floor = par_config.MORSEL_ROWS, par_config.MIN_PARALLEL_ROWS
    yield
    set_arena_default(default)
    par_config.set_workers(workers)
    par_config.MORSEL_ROWS = morsel
    par_config.MIN_PARALLEL_ROWS = floor


@pytest.fixture(scope="module", autouse=True)
def pool_lifecycle():
    yield
    procpool.set_process_workers(1)
    procpool.shutdown_procs()
    gc.collect()


def _case(kind: str = "uniform", queries: int = 25, rows: int = 1_500):
    return FuzzCase(
        seed=11, kind=kind, n_rows=rows, n_dims=2, n_queries=queries,
        size_threshold=64, delta=0.25,
    )


def _counters(stats: QueryStats) -> dict:
    return {name: getattr(stats, name) for name in COUNTER_FIELDS}


def _run_recorded(backend: str, table, queries, case):
    """Drive one fresh index; returns (answers, counters, signature)."""
    index = make_backend(backend, table, case)
    answers, counters = [], []
    for query in queries:
        result = index.query(query)
        answers.append(np.sort(result.row_ids))
        counters.append(_counters(result.stats))
    tree = getattr(index, "tree", None)
    signature = tree.preorder_signature() if isinstance(tree, KDTree) else None
    assert_invariants(index)
    return answers, counters, signature


# ------------------------------------------------------------ arena structure


class TestArenaStructure:
    def _converged_tree(self, rows: int = 3_000):
        set_arena_default(True)
        table = make_uniform_table(rows, 2, seed=21)
        index = MedianKDTree(table, size_threshold=64)
        index.query(RangeQuery([0.0, 0.0], [1.0, 1.0]))  # triggers build
        return table, index

    def test_incremental_mirror_is_consistent(self):
        _, index = self._converged_tree()
        tree = index.tree
        assert tree.arena is not None
        assert tree.arena.consistency_errors(tree) == []

    def test_right_child_is_always_left_plus_one(self):
        _, index = self._converged_tree()
        arena = index.tree.arena
        for slot, dim in enumerate(arena.dims):
            if dim >= 0:
                left = arena.lefts[slot]
                assert arena.los[left + 1] == arena.splits[slot]
                assert arena.his[left] == arena.splits[slot]

    def test_from_tree_searches_like_incremental(self):
        table, index = self._converged_tree()
        tree = index.tree
        rebuilt = Arena.from_tree(tree)
        assert rebuilt.consistency_errors(tree) == []
        for query in make_queries(table, 10, width_fraction=0.2, seed=22):
            a_stats, b_stats = QueryStats(), QueryStats()
            got_a = tree.arena.search(query, a_stats)
            got_b = rebuilt.search(query, b_stats)
            assert a_stats.lookup_nodes == b_stats.lookup_nodes
            assert [m.piece for m in got_a] == [m.piece for m in got_b]
            for ma, mb in zip(got_a, got_b):
                assert np.array_equal(ma.check_low, mb.check_low)
                assert np.array_equal(ma.check_high, mb.check_high)

    def test_search_batch_matches_scalar_search(self):
        table, index = self._converged_tree()
        arena = index.tree.arena
        queries = make_queries(table, 16, width_fraction=0.15, seed=23)
        # One half-open query and one empty-range query join the batch.
        queries.append(RangeQuery([-np.inf, 50.0], [800.0, np.inf]))
        queries.append(RangeQuery([10.0, 10.0], [10.0, 10.0]))
        batched = arena.search_batch(queries)
        assert len(batched) == len(queries)
        for query, (matches, visited) in zip(queries, batched):
            stats = QueryStats()
            expected = arena.search(query, stats)
            assert visited == stats.lookup_nodes
            assert [m.piece for m in matches] == [m.piece for m in expected]
            for got, want in zip(matches, expected):
                assert np.array_equal(got.check_low, want.check_low)
                assert np.array_equal(got.check_high, want.check_high)

    def test_search_batch_empty(self):
        _, index = self._converged_tree()
        assert index.tree.arena.search_batch([]) == []

    def test_split_of_foreign_piece_is_rejected(self):
        from repro.core.node import Piece

        _, index = self._converged_tree()
        stray = Piece(0, 10)
        with pytest.raises(IndexStateError):
            index.tree.arena.apply_split(
                stray, 0, 5.0, 5, Piece(0, 5), Piece(5, 10)
            )

    def test_snapshot_is_generation_cached(self):
        _, index = self._converged_tree()
        arena = index.tree.arena
        assert arena.as_arrays() is arena.as_arrays()

    def test_arena_off_means_no_mirror(self):
        set_arena_default(False)
        table = make_uniform_table(1_000, 2, seed=24)
        index = MedianKDTree(table, size_threshold=64)
        index.query(RangeQuery([0.0, 0.0], [1.0, 1.0]))
        assert index.tree.arena is None


# -------------------------------------------------------------- bit-identity


class TestArenaBitIdentity:
    @pytest.mark.parametrize("backend", ALL_BACKENDS)
    @pytest.mark.parametrize("kind", ["uniform", "duplicate"])
    def test_serial_identity(self, backend, kind):
        case = _case(kind)
        table, queries = build_workload(case)
        set_arena_default(False)
        plain = _run_recorded(backend, table, queries, case)
        set_arena_default(True)
        mirrored = _run_recorded(backend, table, queries, case)
        for got, want in zip(mirrored[0], plain[0]):
            assert np.array_equal(got, want)
        assert mirrored[1] == plain[1]
        assert mirrored[2] == plain[2]

    @pytest.mark.parametrize("backend", ["medkd", "akd", "pkd", "gpkd"])
    def test_thread_parallel_identity(self, backend):
        par_config.set_workers(4)
        par_config.MORSEL_ROWS = 256
        par_config.MIN_PARALLEL_ROWS = 256
        case = _case()
        table, queries = build_workload(case)
        set_arena_default(False)
        plain = _run_recorded(backend, table, queries, case)
        set_arena_default(True)
        mirrored = _run_recorded(backend, table, queries, case)
        for got, want in zip(mirrored[0], plain[0]):
            assert np.array_equal(got, want)
        assert mirrored[1] == plain[1]
        assert mirrored[2] == plain[2]

    def test_process_parallel_identity(self):
        procpool.set_process_workers(2)
        par_config.MORSEL_ROWS = 256
        par_config.MIN_PARALLEL_ROWS = 256
        case = _case(queries=15)
        table, queries = build_workload(case)
        set_arena_default(False)
        plain = _run_recorded("gpkd", table, queries, case)
        set_arena_default(True)
        mirrored = _run_recorded("gpkd", table, queries, case)
        for got, want in zip(mirrored[0], plain[0]):
            assert np.array_equal(got, want)
        assert mirrored[1] == plain[1]
        assert mirrored[2] == plain[2]


# ----------------------------------------------------------- batch execution


class TestQueryBatch:
    @pytest.mark.parametrize("backend", ALL_BACKENDS)
    def test_batch_matches_sequential(self, backend):
        case = _case(queries=30)
        table, queries = build_workload(case)
        set_arena_default(True)
        sequential = make_backend(backend, table, case)
        expected = [np.sort(sequential.query(q).row_ids) for q in queries]
        batched = make_backend(backend, table, case)
        answers = batched.query_batch(queries)
        assert len(answers) == len(queries)
        for got, want in zip(answers, expected):
            assert np.array_equal(np.sort(got.row_ids), want)
        assert_invariants(batched)
        seq_tree = getattr(sequential, "tree", None)
        if isinstance(seq_tree, KDTree):
            assert (
                batched.tree.preorder_signature()
                == seq_tree.preorder_signature()
            )

    @pytest.mark.parametrize("backend", ALL_BACKENDS)
    def test_batch_counters_match_sequential_when_converged(self, backend):
        case = _case(queries=25)
        table, queries = build_workload(case)
        set_arena_default(True)
        first = make_backend(backend, table, case)
        second = make_backend(backend, table, case)
        for query in queries:  # converge both the same way
            first.query(query)
            second.query(query)
        probes = make_queries(table, 12, width_fraction=0.2, seed=31)
        want = [_counters(first.query(q).stats) for q in probes]
        got = [_counters(r.stats) for r in second.query_batch(probes)]
        assert got == want

    def test_batch_on_empty_list(self):
        case = _case()
        table, _ = build_workload(case)
        index = make_backend("gpkd", table, case)
        assert index.query_batch([]) == []

    def test_batch_mid_refinement_drains_sequentially(self):
        """A batch issued before convergence must still adapt per query."""
        case = _case(queries=40)
        table, queries = build_workload(case)
        set_arena_default(True)
        index = make_backend("pkd", table, case)
        answers = index.query_batch(queries)
        for query, answer in zip(queries, answers):
            assert np.array_equal(
                np.sort(answer.row_ids), reference_answer(table, query)
            )
        twin = make_backend("pkd", table, case)
        for query in queries:
            twin.query(query)
        assert (
            index.tree.preorder_signature() == twin.tree.preorder_signature()
        )

    def test_batch_seconds_share_elapsed(self):
        table = make_uniform_table(2_000, 2, seed=33)
        index = GreedyProgressiveKDTree(table, delta=0.25, size_threshold=64)
        queries = make_queries(table, 8, width_fraction=0.2, seed=34)
        for query in queries:
            index.query(query)
        answers = index.query_batch(queries)
        shares = {round(a.stats.seconds, 12) for a in answers if a.stats.converged}
        assert len(shares) <= 2  # converged tail shares one per-batch cost


class TestSessionRunBatch:
    def test_run_batch_matches_query_across_groups(self):
        from repro.session import ExplorationSession

        rng = np.random.default_rng(41)
        columns = {
            "x": rng.random(2_000) * 100,
            "y": rng.random(2_000) * 100,
            "z": rng.random(2_000) * 100,
        }
        with ExplorationSession(technique="greedy", size_threshold=128) as ref:
            ref.register("t", columns)
            with ExplorationSession(
                technique="greedy", size_threshold=128
            ) as session:
                session.register("t", columns)
                bounds_list = []
                for step in range(12):
                    lo = float(rng.uniform(0, 60))
                    if step % 3 == 0:
                        bounds_list.append({"x": (lo, lo + 30)})
                    elif step % 3 == 1:
                        bounds_list.append(
                            {"y": (lo, lo + 25), "z": (lo, lo + 25)}
                        )
                    else:
                        bounds_list.append({"x": (lo, lo + 20), "y": (lo, lo + 20)})
                want = [
                    np.sort(ref.query("t", **bounds).row_ids)
                    for bounds in bounds_list
                ]
                got = session.run_batch("t", bounds_list)
                assert len(got) == len(bounds_list)
                for result, expected in zip(got, want):
                    assert np.array_equal(np.sort(result.row_ids), expected)

    def test_run_batch_empty(self):
        from repro.session import ExplorationSession

        with ExplorationSession() as session:
            session.register("t", {"x": np.arange(100.0)})
            assert session.run_batch("t", []) == []


class TestServeBatch:
    def test_batch_op_over_tcp(self):
        from repro.serve import IndexServer, ServeClient, ServerThread, TableSpec
        from tests.test_serve import oracle_answer

        spec = TableSpec("wire", "uniform", 4_000, 2, seed=9)
        with ServerThread(IndexServer(size_threshold=256)) as handle:
            with ServeClient(handle.host, handle.port) as client:
                client.register_spec(spec)
                session = client.open_session("tenant-b")
                rng = np.random.default_rng(51)
                bounds_list = []
                for _ in range(6):
                    low = rng.uniform(0, 60, size=2)
                    high = low + rng.uniform(5, 30, size=2)
                    bounds_list.append({
                        f"c{d}": (float(low[d]), float(high[d]))
                        for d in range(2)
                    })
                response = client.batch(session, "wire", bounds_list)
                assert response["batch"] == len(bounds_list)
                results = response["results"]
                assert len(results) == len(bounds_list)
                for bounds, payload in zip(bounds_list, results):
                    want_count, want_checksum = oracle_answer(spec, bounds)
                    assert payload["count"] == want_count
                    assert payload["checksum"] == want_checksum
                stats = client.stats()
                assert stats["queries_total"] == len(bounds_list)
                client.shutdown()
