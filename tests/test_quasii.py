"""QUASII: d-level hierarchy, aggressive refinement, sealing."""

import numpy as np
import pytest

from repro import AdaptiveKDTree, InvalidParameterError, Quasii, RangeQuery
from tests.conftest import assert_correct, make_queries, make_uniform_table


class TestCorrectness:
    def test_uniform(self, small_table, small_queries):
        assert_correct(Quasii(small_table, size_threshold=64), small_table, small_queries)

    def test_duplicates(self, duplicate_table):
        queries = make_queries(duplicate_table, 20, width_fraction=0.3, seed=3)
        assert_correct(
            Quasii(duplicate_table, size_threshold=32), duplicate_table, queries
        )

    def test_constant_column(self, constant_column_table):
        queries = [
            RangeQuery([10.0, 40.0, 10.0], [60.0, 50.0, 60.0]),
            RangeQuery([5.0, 41.0, 5.0], [95.0, 42.0, 95.0]),
            RangeQuery([5.0, 42.0, 5.0], [95.0, 99.0, 95.0]),
        ] * 3
        assert_correct(
            Quasii(constant_column_table, size_threshold=32),
            constant_column_table,
            queries,
        )

    def test_repeated_query_stable(self, small_table, small_queries):
        index = Quasii(small_table, size_threshold=64)
        first = np.sort(index.query(small_queries[0]).row_ids)
        again = np.sort(index.query(small_queries[0]).row_ids)
        assert np.array_equal(first, again)

    def test_single_dimension(self):
        table = make_uniform_table(1_000, 1, seed=4)
        queries = make_queries(table, 10, width_fraction=0.2, seed=5)
        assert_correct(Quasii(table, size_threshold=32), table, queries)


class TestRefinementBehaviour:
    def test_level_thresholds_shrink(self, small_table):
        index = Quasii(small_table, size_threshold=64)
        assert index._levels == sorted(index._levels, reverse=True)
        assert index._levels[-1] == 64

    def test_aggressive_first_touch(self, small_table, small_queries):
        # QUASII creates far more pieces on the first query than AKD's
        # minimal adaptation (paper: 13,480 vs 161 nodes).
        quasii = Quasii(small_table, size_threshold=32)
        adaptive = AdaptiveKDTree(small_table, size_threshold=32)
        quasii.query(small_queries[0])
        adaptive.query(small_queries[0])
        assert quasii.node_count > 2 * adaptive.node_count

    def test_first_touch_cost_higher_than_akd(self, small_table, small_queries):
        quasii = Quasii(small_table, size_threshold=32)
        adaptive = AdaptiveKDTree(small_table, size_threshold=32)
        q_work = quasii.query(small_queries[0]).stats.indexing_work
        a_work = adaptive.query(small_queries[0]).stats.indexing_work
        assert q_work > a_work

    def test_refined_region_gets_fast(self, small_table, small_queries):
        index = Quasii(small_table, size_threshold=32)
        first = index.query(small_queries[0]).stats.work
        repeat = index.query(small_queries[0]).stats.work
        assert repeat < first / 5

    def test_sealed_pieces_not_recracked(self, small_table):
        index = Quasii(small_table, size_threshold=32)
        span = small_table.n_rows
        query = RangeQuery([span * 0.2] * 3, [span * 0.5] * 3)
        index.query(query)
        nodes_after = index.node_count
        # A slightly shifted query inside the refined region may crack a
        # little more at the bottom level but must not rebuild the top.
        shifted = RangeQuery([span * 0.25] * 3, [span * 0.45] * 3)
        index.query(shifted)
        assert index.node_count < nodes_after * 1.5

    def test_never_converges(self, small_table, small_queries):
        index = Quasii(small_table, size_threshold=64)
        for query in small_queries:
            index.query(query)
        assert not index.converged

    def test_threshold_validated(self, small_table):
        with pytest.raises(InvalidParameterError):
            Quasii(small_table, size_threshold=0)

    def test_pieces_partition_table(self, small_table, small_queries):
        index = Quasii(small_table, size_threshold=64)
        for query in small_queries[:5]:
            index.query(query)
        # Top-level pieces must tile [0, N) exactly.
        positions = sorted((p.start, p.end) for p in index._top)
        assert positions[0][0] == 0
        assert positions[-1][1] == small_table.n_rows
        for (s0, e0), (s1, e1) in zip(positions, positions[1:]):
            assert e0 == s1

    def test_bounds_consistent_with_data(self, small_table, small_queries):
        index = Quasii(small_table, size_threshold=64)
        for query in small_queries[:5]:
            index.query(query)
        column = index.index_table.columns[0]
        for piece in index._top:
            values = column[piece.start : piece.end]
            if values.size:
                assert (values > piece.low).all()
                assert (values <= piece.high).all()


class TestHighDimensional:
    def test_genomics_dimensionality(self):
        # 19 levels deep, one per dimension; answers stay exact.
        from repro.workloads import genomics_workload

        workload = genomics_workload(n_rows=1_200, n_queries=6)
        index = Quasii(workload.table, size_threshold=64)
        from tests.conftest import assert_correct

        assert_correct(index, workload.table, workload.queries)

    def test_sixteen_dims(self):
        table = make_uniform_table(800, 16, seed=7)
        queries = make_queries(table, 4, width_fraction=0.6, seed=8)
        assert_correct(Quasii(table, size_threshold=64), table, queries)
