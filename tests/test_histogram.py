"""Equi-width histograms and their use in GPKD estimates."""

import numpy as np
import pytest

from repro import GreedyProgressiveKDTree, InvalidParameterError, RangeQuery
from repro.core.histogram import EquiWidthHistogram, TableHistograms
from tests.conftest import assert_correct, make_queries, make_uniform_table


class TestEquiWidthHistogram:
    def test_uniform_estimates_accurate(self):
        rng = np.random.default_rng(0)
        values = rng.random(50_000) * 100
        histogram = EquiWidthHistogram(values, n_buckets=64)
        for low, high in [(10, 30), (0, 100), (45, 55), (90, 100)]:
            truth = ((values > low) & (values <= high)).mean()
            estimate = histogram.estimate_fraction(low, high)
            assert estimate == pytest.approx(truth, abs=0.02)

    def test_skewed_estimates_reasonable(self):
        rng = np.random.default_rng(1)
        values = rng.lognormal(0, 1, 50_000)
        histogram = EquiWidthHistogram(values, n_buckets=128)
        truth = ((values > 0.5) & (values <= 2.0)).mean()
        estimate = histogram.estimate_fraction(0.5, 2.0)
        assert estimate == pytest.approx(truth, abs=0.1)

    def test_out_of_range_is_zero(self):
        histogram = EquiWidthHistogram(np.arange(100.0))
        assert histogram.estimate_fraction(200.0, 300.0) == 0.0
        assert histogram.estimate_fraction(-50.0, -10.0) == 0.0

    def test_empty_interval_is_zero(self):
        histogram = EquiWidthHistogram(np.arange(100.0))
        assert histogram.estimate_fraction(50.0, 50.0) == 0.0
        assert histogram.estimate_fraction(60.0, 40.0) == 0.0

    def test_full_range_is_one(self):
        histogram = EquiWidthHistogram(np.arange(100.0))
        assert histogram.estimate_fraction(-1.0, 100.0) == pytest.approx(1.0)

    def test_constant_column(self):
        histogram = EquiWidthHistogram(np.full(100, 7.0))
        assert histogram.estimate_fraction(6.0, 8.0) == 1.0
        assert histogram.estimate_fraction(7.5, 8.0) == 0.0

    def test_single_bucket(self):
        histogram = EquiWidthHistogram(np.arange(100.0), n_buckets=1)
        assert histogram.estimate_fraction(0.0, 49.5) == pytest.approx(
            0.5, abs=0.02
        )

    def test_counts_sum_to_rows(self):
        rng = np.random.default_rng(2)
        values = rng.random(1_000)
        histogram = EquiWidthHistogram(values, n_buckets=16)
        assert histogram.counts.sum() == 1_000

    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            EquiWidthHistogram(np.arange(10.0), n_buckets=0)
        with pytest.raises(InvalidParameterError):
            EquiWidthHistogram(np.array([]))

    def test_repr(self):
        assert "buckets" in repr(EquiWidthHistogram(np.arange(10.0)))


class TestTableHistograms:
    def test_box_selectivity_under_independence(self):
        table = make_uniform_table(20_000, 2, seed=3)
        histograms = TableHistograms(table)
        span = table.n_rows
        query = RangeQuery([0.0, 0.0], [0.5 * span, 0.2 * span])
        estimate = histograms.estimate_selectivity(query)
        truth = (
            (table.column(0) <= 0.5 * span) & (table.column(1) <= 0.2 * span)
        ).mean()
        assert estimate == pytest.approx(truth, abs=0.02)

    def test_candidate_elements_tracks_scan_counter(self):
        from repro import FullScan

        table = make_uniform_table(20_000, 3, seed=4)
        histograms = TableHistograms(table)
        query = make_queries(table, 1, width_fraction=0.3, seed=5)[0]
        estimate = histograms.estimate_candidate_elements(query, table.n_rows)
        stats = FullScan(table).query(query).stats
        assert estimate == pytest.approx(stats.scanned, rel=0.1)


class TestGreedyWithHistograms:
    def test_correct_answers(self):
        table = make_uniform_table(3_000, 3, seed=6)
        index = GreedyProgressiveKDTree(
            table, delta=0.2, size_threshold=64, use_histograms=True
        )
        assert_correct(index, table, make_queries(table, 25, seed=7))

    def test_estimates_tighter_so_less_reactive_work(self):
        """With histograms the pre-spend estimate is closer to reality, so
        less of the budget arrives via the reactive top-up loop (the
        planned budget_rows figure grows)."""
        table = make_uniform_table(4_000, 3, seed=8)
        queries = make_queries(table, 6, width_fraction=0.1, seed=9)

        def planned_delta(index):
            index.query(queries[0])  # establish t_total
            return index.query(queries[1]).stats.delta_used

        default = GreedyProgressiveKDTree(table, delta=0.2, size_threshold=64)
        informed = GreedyProgressiveKDTree(
            table, delta=0.2, size_threshold=64, use_histograms=True
        )
        # Both end up spending ~t_total; the histogram variant plans more
        # up-front (selective queries survive far fewer than half per dim).
        assert planned_delta(informed) >= planned_delta(default) * 0.99

    def test_invariant_still_holds(self):
        from repro import CostModel, MachineProfile

        table = make_uniform_table(3_000, 3, seed=10)
        model = CostModel(MachineProfile.deterministic(), 3_000, 3)
        index = GreedyProgressiveKDTree(
            table,
            delta=0.2,
            size_threshold=64,
            cost_model=model,
            use_histograms=True,
        )
        gross = []
        for query in make_queries(table, 40, seed=11):
            stats = index.query(query).stats
            if index.converged:
                break
            gross.append(model.seconds_of(stats))
        target = gross[0]
        for cost in gross:
            assert cost == pytest.approx(target, rel=0.25)
