"""Index snapshots: save, load, and query equivalence."""

import numpy as np
import pytest

from repro import AdaptiveKDTree, AverageKDTree, IndexStateError, ProgressiveKDTree
from repro.core.serialize import (
    FrozenKDIndex,
    load_index,
    save_index,
    snapshot_index,
)
from tests.conftest import make_queries, make_uniform_table


def warmed_index(cls, n_queries=10, **kwargs):
    table = make_uniform_table(2_000, 2, seed=50)
    queries = make_queries(table, n_queries, width_fraction=0.2, seed=51)
    index = cls(table, size_threshold=64, **kwargs)
    for query in queries:
        index.query(query)
    return table, queries, index


class TestRoundTrip:
    @pytest.mark.parametrize(
        "cls,kwargs",
        [
            (AdaptiveKDTree, {}),
            (AverageKDTree, {}),
            (ProgressiveKDTree, {"delta": 1.0}),
        ],
    )
    def test_answers_survive_roundtrip(self, cls, kwargs, tmp_path):
        table, queries, index = warmed_index(cls, **kwargs)
        path = str(tmp_path / "index.npz")
        save_index(index, path)
        frozen = load_index(path)
        for query in queries:
            original = np.sort(index.query(query).row_ids)
            reloaded = np.sort(frozen.query(query).row_ids)
            assert np.array_equal(original, reloaded)

    def test_structure_preserved(self, tmp_path):
        _, __, index = warmed_index(AdaptiveKDTree)
        path = str(tmp_path / "index.npz")
        save_index(index, path)
        frozen = load_index(path)
        assert frozen.node_count == index.node_count
        assert frozen.tree.height() == index.tree.height()
        assert frozen.converged

    def test_frozen_does_not_adapt(self, tmp_path):
        table, queries, index = warmed_index(AdaptiveKDTree, n_queries=2)
        path = str(tmp_path / "index.npz")
        save_index(index, path)
        frozen = load_index(path)
        nodes = frozen.node_count
        fresh = make_queries(table, 5, width_fraction=0.1, seed=52)
        for query in fresh:
            stats = frozen.query(query).stats
            assert stats.nodes_created == 0
            assert stats.indexing_work == 0
        assert frozen.node_count == nodes

    def test_frozen_answers_fresh_queries_correctly(self, tmp_path):
        from tests.conftest import reference_answer

        table, _, index = warmed_index(AdaptiveKDTree)
        path = str(tmp_path / "index.npz")
        save_index(index, path)
        frozen = load_index(path)
        for query in make_queries(table, 10, width_fraction=0.3, seed=53):
            got = np.sort(frozen.query(query).row_ids)
            assert np.array_equal(got, reference_answer(table, query))


class TestSnapshotValidation:
    def test_snapshot_before_first_query_rejected(self):
        table = make_uniform_table(100, 2)
        with pytest.raises(IndexStateError):
            snapshot_index(AdaptiveKDTree(table))

    def test_corrupt_split_rejected(self, tmp_path):
        _, __, index = warmed_index(AdaptiveKDTree)
        payload = snapshot_index(index)
        payload["tree_splits"] = payload["tree_splits"].copy()
        internal = np.flatnonzero(payload["tree_dims"] >= 0)
        if internal.size:
            payload["tree_splits"][internal[0]] = 10**9
        with pytest.raises(IndexStateError):
            FrozenKDIndex.from_snapshot(payload)

    def test_truncated_encoding_rejected(self):
        _, __, index = warmed_index(AdaptiveKDTree)
        payload = snapshot_index(index)
        payload["tree_dims"] = payload["tree_dims"][:-1]
        payload["tree_keys"] = payload["tree_keys"][:-1]
        payload["tree_splits"] = payload["tree_splits"][:-1]
        with pytest.raises(IndexStateError):
            FrozenKDIndex.from_snapshot(payload)

    def test_column_length_mismatch_rejected(self):
        _, __, index = warmed_index(AdaptiveKDTree)
        payload = snapshot_index(index)
        payload["column_0"] = payload["column_0"][:-1]
        with pytest.raises(IndexStateError):
            FrozenKDIndex.from_snapshot(payload)

    def test_snapshot_contains_all_columns(self):
        _, __, index = warmed_index(AdaptiveKDTree)
        payload = snapshot_index(index)
        assert "column_0" in payload and "column_1" in payload
        assert payload["rowids"].shape[0] == 2_000


class TestPartialProgressiveRoundTrip:
    """A snapshot taken mid-refinement must reproduce the index exactly.

    Regression guard: the progressive KD-Tree spends most of its life
    between "creation done" and "converged" — half-refined pieces, paused
    partition jobs — and a snapshot taken there must capture the tree
    byte-for-byte (same preorder signature, same :class:`TreeSummary`)
    and answer every query identically.
    """

    def partially_built_pkd(self):
        from tests.conftest import make_queries, make_uniform_table

        table = make_uniform_table(3_000, 2, seed=70)
        queries = make_queries(table, 40, width_fraction=0.15, seed=71)
        index = ProgressiveKDTree(table, delta=0.1, size_threshold=64)
        for query in queries:
            index.query(query)
            if index.phase == "refinement" and index.node_count >= 3:
                break
        assert index.phase == "refinement" and not index.converged
        return table, index

    def test_partial_pkd_summary_and_signature_survive(self, tmp_path):
        from repro import summarize_tree

        _, index = self.partially_built_pkd()
        path = str(tmp_path / "partial.npz")
        save_index(index, path)
        frozen = load_index(path)
        assert summarize_tree(frozen.tree) == summarize_tree(index.tree)
        assert (
            frozen.tree.preorder_signature()
            == index.tree.preorder_signature()
        )
        assert np.array_equal(frozen.index_table.rowids, index.index_table.rowids)

    def test_partial_pkd_answers_survive(self, tmp_path):
        from tests.conftest import make_queries, reference_answer

        table, index = self.partially_built_pkd()
        path = str(tmp_path / "partial.npz")
        save_index(index, path)
        frozen = load_index(path)
        for query in make_queries(table, 15, width_fraction=0.25, seed=72):
            got = np.sort(frozen.query(query).row_ids)
            assert np.array_equal(got, reference_answer(table, query))

    def test_partial_pkd_frozen_passes_invariants(self, tmp_path):
        from repro.invariants import assert_invariants

        _, index = self.partially_built_pkd()
        path = str(tmp_path / "partial.npz")
        save_index(index, path)
        frozen = load_index(path)
        assert_invariants(frozen)
