"""Index snapshots: save, load, and query equivalence."""

import numpy as np
import pytest

from repro import AdaptiveKDTree, AverageKDTree, IndexStateError, ProgressiveKDTree
from repro.core.serialize import (
    FrozenKDIndex,
    load_index,
    save_index,
    snapshot_index,
)
from tests.conftest import make_queries, make_uniform_table


def warmed_index(cls, n_queries=10, **kwargs):
    table = make_uniform_table(2_000, 2, seed=50)
    queries = make_queries(table, n_queries, width_fraction=0.2, seed=51)
    index = cls(table, size_threshold=64, **kwargs)
    for query in queries:
        index.query(query)
    return table, queries, index


class TestRoundTrip:
    @pytest.mark.parametrize(
        "cls,kwargs",
        [
            (AdaptiveKDTree, {}),
            (AverageKDTree, {}),
            (ProgressiveKDTree, {"delta": 1.0}),
        ],
    )
    def test_answers_survive_roundtrip(self, cls, kwargs, tmp_path):
        table, queries, index = warmed_index(cls, **kwargs)
        path = str(tmp_path / "index.npz")
        save_index(index, path)
        frozen = load_index(path)
        for query in queries:
            original = np.sort(index.query(query).row_ids)
            reloaded = np.sort(frozen.query(query).row_ids)
            assert np.array_equal(original, reloaded)

    def test_structure_preserved(self, tmp_path):
        _, __, index = warmed_index(AdaptiveKDTree)
        path = str(tmp_path / "index.npz")
        save_index(index, path)
        frozen = load_index(path)
        assert frozen.node_count == index.node_count
        assert frozen.tree.height() == index.tree.height()
        assert frozen.converged

    def test_frozen_does_not_adapt(self, tmp_path):
        table, queries, index = warmed_index(AdaptiveKDTree, n_queries=2)
        path = str(tmp_path / "index.npz")
        save_index(index, path)
        frozen = load_index(path)
        nodes = frozen.node_count
        fresh = make_queries(table, 5, width_fraction=0.1, seed=52)
        for query in fresh:
            stats = frozen.query(query).stats
            assert stats.nodes_created == 0
            assert stats.indexing_work == 0
        assert frozen.node_count == nodes

    def test_frozen_answers_fresh_queries_correctly(self, tmp_path):
        from tests.conftest import reference_answer

        table, _, index = warmed_index(AdaptiveKDTree)
        path = str(tmp_path / "index.npz")
        save_index(index, path)
        frozen = load_index(path)
        for query in make_queries(table, 10, width_fraction=0.3, seed=53):
            got = np.sort(frozen.query(query).row_ids)
            assert np.array_equal(got, reference_answer(table, query))


class TestSnapshotValidation:
    def test_snapshot_before_first_query_rejected(self):
        table = make_uniform_table(100, 2)
        with pytest.raises(IndexStateError):
            snapshot_index(AdaptiveKDTree(table))

    def test_corrupt_split_rejected(self, tmp_path):
        _, __, index = warmed_index(AdaptiveKDTree)
        payload = snapshot_index(index)
        payload["tree_splits"] = payload["tree_splits"].copy()
        internal = np.flatnonzero(payload["tree_dims"] >= 0)
        if internal.size:
            payload["tree_splits"][internal[0]] = 10**9
        with pytest.raises(IndexStateError):
            FrozenKDIndex.from_snapshot(payload)

    def test_truncated_encoding_rejected(self):
        _, __, index = warmed_index(AdaptiveKDTree)
        payload = snapshot_index(index)
        payload["tree_dims"] = payload["tree_dims"][:-1]
        payload["tree_keys"] = payload["tree_keys"][:-1]
        payload["tree_splits"] = payload["tree_splits"][:-1]
        with pytest.raises(IndexStateError):
            FrozenKDIndex.from_snapshot(payload)

    def test_column_length_mismatch_rejected(self):
        _, __, index = warmed_index(AdaptiveKDTree)
        payload = snapshot_index(index)
        payload["column_0"] = payload["column_0"][:-1]
        with pytest.raises(IndexStateError):
            FrozenKDIndex.from_snapshot(payload)

    def test_snapshot_contains_all_columns(self):
        _, __, index = warmed_index(AdaptiveKDTree)
        payload = snapshot_index(index)
        assert "column_0" in payload and "column_1" in payload
        assert payload["rowids"].shape[0] == 2_000


class TestPartialProgressiveRoundTrip:
    """A snapshot taken mid-refinement must reproduce the index exactly.

    Regression guard: the progressive KD-Tree spends most of its life
    between "creation done" and "converged" — half-refined pieces, paused
    partition jobs — and a snapshot taken there must capture the tree
    byte-for-byte (same preorder signature, same :class:`TreeSummary`)
    and answer every query identically.
    """

    def partially_built_pkd(self):
        from tests.conftest import make_queries, make_uniform_table

        table = make_uniform_table(3_000, 2, seed=70)
        queries = make_queries(table, 40, width_fraction=0.15, seed=71)
        index = ProgressiveKDTree(table, delta=0.1, size_threshold=64)
        for query in queries:
            index.query(query)
            if index.phase == "refinement" and index.node_count >= 3:
                break
        assert index.phase == "refinement" and not index.converged
        return table, index

    def test_partial_pkd_summary_and_signature_survive(self, tmp_path):
        from repro import summarize_tree

        _, index = self.partially_built_pkd()
        path = str(tmp_path / "partial.npz")
        save_index(index, path)
        frozen = load_index(path)
        assert summarize_tree(frozen.tree) == summarize_tree(index.tree)
        assert (
            frozen.tree.preorder_signature()
            == index.tree.preorder_signature()
        )
        assert np.array_equal(frozen.index_table.rowids, index.index_table.rowids)

    def test_partial_pkd_answers_survive(self, tmp_path):
        from tests.conftest import make_queries, reference_answer

        table, index = self.partially_built_pkd()
        path = str(tmp_path / "partial.npz")
        save_index(index, path)
        frozen = load_index(path)
        for query in make_queries(table, 15, width_fraction=0.25, seed=72):
            got = np.sort(frozen.query(query).row_ids)
            assert np.array_equal(got, reference_answer(table, query))

    def test_partial_pkd_frozen_passes_invariants(self, tmp_path):
        from repro.invariants import assert_invariants

        _, index = self.partially_built_pkd()
        path = str(tmp_path / "partial.npz")
        save_index(index, path)
        frozen = load_index(path)
        assert_invariants(frozen)


class TestZoneMapRoundTrip:
    """Zone maps (I7/I8 metadata) and leaf levels survive the snapshot,
    so a reloaded index prunes identically and the rebuilt flat arena is
    byte-for-byte the one the original tree carried."""

    def _leaves(self, tree):
        return [piece for piece, _, __ in tree.iter_leaves_with_bounds()]

    def test_zone_maps_survive(self, tmp_path):
        _, __, index = warmed_index(AdaptiveKDTree)
        path = str(tmp_path / "index.npz")
        save_index(index, path)
        frozen = load_index(path)
        original = self._leaves(index.tree)
        reloaded = self._leaves(frozen.tree)
        assert len(original) == len(reloaded)
        zoned = 0
        for want, got in zip(original, reloaded):
            assert (got.start, got.end) == (want.start, want.end)
            assert got.level == want.level
            assert got.zone_lo == want.zone_lo
            assert got.zone_hi == want.zone_hi
            zoned += want.zone_lo is not None
        assert zoned > 0  # the fixture actually exercises zone payloads

    def test_pruning_counters_survive(self, tmp_path):
        """Same zones => same pruned/contained shortcut counters.

        (Full up-front build: the original must not adapt between the
        two measurements or the comparison is meaningless.)"""
        table, _, index = warmed_index(AverageKDTree)
        path = str(tmp_path / "index.npz")
        save_index(index, path)
        frozen = load_index(path)
        for query in make_queries(table, 10, width_fraction=0.3, seed=54):
            want = index.query(query).stats
            got = frozen.query(query).stats
            assert (got.pruned, got.contained) == (want.pruned, want.contained)
            assert got.scanned == want.scanned

    def test_frozen_counters_are_exact(self, tmp_path):
        _, __, index = warmed_index(AdaptiveKDTree)
        path = str(tmp_path / "index.npz")
        save_index(index, path)
        frozen = load_index(path)
        assert frozen.tree.leaf_count == index.tree.leaf_count
        assert frozen.tree.node_count == index.tree.node_count

    def test_arena_attached_and_consistent(self, tmp_path):
        from repro.core.arena import arena_default

        assert arena_default()
        _, __, index = warmed_index(AdaptiveKDTree)
        path = str(tmp_path / "index.npz")
        save_index(index, path)
        frozen = load_index(path)
        arena = frozen.tree.arena
        assert arena is not None
        assert arena.consistency_errors(frozen.tree) == []

    def test_old_snapshot_without_zones_still_loads(self, tmp_path):
        """Backward compat: pre-zone payloads decode (zones just absent)."""
        from tests.conftest import reference_answer

        table, _, index = warmed_index(AdaptiveKDTree)
        payload = snapshot_index(index)
        payload.pop("tree_zone_lo")
        payload.pop("tree_zone_hi")
        frozen = FrozenKDIndex.from_snapshot(payload)
        assert all(p.zone_lo is None for p in self._leaves(frozen.tree))
        for query in make_queries(table, 5, width_fraction=0.3, seed=55):
            got = np.sort(frozen.query(query).row_ids)
            assert np.array_equal(got, reference_answer(table, query))
