"""The `python -m repro.bench` command-line runner."""

import pytest

from repro.bench.__main__ import EXPERIMENTS, main


class TestArguments:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in EXPERIMENTS:
            assert name in out

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["nonsense"])

    def test_requires_an_experiment(self):
        with pytest.raises(SystemExit):
            main([])


class TestTinyRuns:
    ARGS = ["--small", "2500", "--large", "4000", "--queries", "12",
            "--threshold", "256"]

    def test_table2(self, capsys):
        assert main(["table2"] + self.ARGS) == 0
        out = capsys.readouterr().out
        assert "Table II" in out
        assert "Unif(8)" in out
        assert "MedKD" in out

    def test_table4(self, capsys):
        assert main(["table4"] + self.ARGS) == 0
        out = capsys.readouterr().out
        assert "variance" in out

    def test_fig7(self, capsys):
        assert main(["fig7"] + self.ARGS) == 0
        out = capsys.readouterr().out
        assert "tau" in out
        assert "GPFQ" in out

    def test_fig6(self, capsys):
        assert main(["fig6"] + self.ARGS) == 0
        out = capsys.readouterr().out
        assert "Fig 6a" in out and "Fig 6d" in out

    def test_overrides_affect_scale(self, capsys):
        # Running with overridden sizes must not blow up and must print
        # all fourteen workloads.
        assert main(["table5"] + self.ARGS) == 0
        out = capsys.readouterr().out
        assert out.count("\n") > 14


class TestReport:
    def test_report_generates_full_document(self, capsys):
        assert main(["report"] + TestTinyRuns.ARGS) == 0
        out = capsys.readouterr().out
        for marker in (
            "Table II", "Table III", "Table IV", "Table V", "Table VI",
            "Fig 5", "Fig 6a", "Fig 6d", "Fig 7", "tau",
        ):
            assert marker in out
        assert "|" in out  # charts rendered
