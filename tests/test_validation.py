"""The differential validation harness."""

import numpy as np
import pytest

from repro import AdaptiveKDTree, FullScan, ProgressiveKDTree, RangeQuery
from repro.core.index_base import BaseIndex
from repro.core.metrics import QueryStats
from repro.validation import check_index, check_indexes
from tests.conftest import make_queries, make_uniform_table


class BrokenIndex(BaseIndex):
    """Deliberately wrong: drops the last matching row of every answer."""

    name = "Broken"

    def _execute(self, query, stats):
        from repro.core.scan import full_scan

        answer = full_scan(self.table.columns(), query, stats)
        return answer[:-1] if answer.size else answer


class NoisyIndex(BaseIndex):
    """Deliberately wrong the other way: adds a bogus row id."""

    name = "Noisy"

    def _execute(self, query, stats):
        from repro.core.scan import full_scan

        answer = full_scan(self.table.columns(), query, stats)
        return np.concatenate([answer, np.array([0], dtype=np.int64)])


class TestCheckIndex:
    def test_correct_index_passes(self, small_table, small_queries):
        report = check_index(
            AdaptiveKDTree(small_table, size_threshold=64),
            small_table,
            small_queries,
        )
        assert report.ok
        assert "OK" in str(report)
        report.raise_on_failure()  # no-op

    def test_detects_missing_rows(self, small_table, small_queries):
        report = check_index(BrokenIndex(small_table), small_table, small_queries)
        assert not report.ok
        assert report.mismatches
        first = report.mismatches[0]
        assert first.missing.size == 1
        assert first.unexpected.size == 0
        with pytest.raises(AssertionError):
            report.raise_on_failure()

    def test_detects_unexpected_rows(self, small_table):
        # A query that excludes row 0 exposes the bogus extra id.
        value = small_table.column(0)[0]
        query = RangeQuery(
            [value + 1, -np.inf, -np.inf], [np.inf, np.inf, np.inf]
        )
        report = check_index(NoisyIndex(small_table), small_table, [query])
        assert not report.ok
        assert report.mismatches[0].unexpected.size == 1

    def test_stop_after_limits_work(self, small_table, small_queries):
        report = check_index(
            BrokenIndex(small_table),
            small_table,
            small_queries,
            stop_after=2,
        )
        assert len(report.mismatches) == 2

    def test_detects_structural_corruption(self, small_table, small_queries):
        index = AdaptiveKDTree(small_table, size_threshold=64)
        index.query(small_queries[0])
        # Corrupt the index table behind the tree's back.
        index.index_table.columns[0][:] = 0.0
        report = check_index(
            index, small_table, small_queries[1:3], check_structure=True
        )
        assert report.structural_errors or report.mismatches

    def test_mismatch_str(self, small_table, small_queries):
        report = check_index(BrokenIndex(small_table), small_table, small_queries)
        text = str(report.mismatches[0])
        assert "missing" in text


class TestCheckIndexes:
    def test_multiple_factories(self, small_table, small_queries):
        reports = check_indexes(
            {
                "akd": lambda t: AdaptiveKDTree(t, size_threshold=64),
                "pkd": lambda t: ProgressiveKDTree(
                    t, delta=0.3, size_threshold=64
                ),
                "fs": FullScan,
                "broken": BrokenIndex,
            },
            small_table,
            small_queries,
        )
        assert reports["akd"].ok
        assert reports["pkd"].ok
        assert reports["fs"].ok
        assert not reports["broken"].ok
