"""Mid-construction equivalence for the progressive indexes.

The progressive KD-Trees answer queries while their index is anywhere
between "nothing built" and "fully converged" — creation-phase double
scans, paused partition jobs, half-refined pieces.  These tests pin the
paper's master invariant at *every* intermediate state of a 50-query
workload, across a grid of ``delta`` and ``size_threshold``, with the
full structural invariant suite run after each query.
"""

import numpy as np
import pytest

from repro import GreedyProgressiveKDTree, ProgressiveKDTree
from repro.invariants import InvariantMonitor, convergence_determinism_errors
from tests.conftest import make_queries, make_uniform_table, reference_answer

N_QUERIES = 50


def drive_checked(index, table, queries):
    """Run the workload; answers and invariants checked after every query."""
    monitor = InvariantMonitor(index)
    for position, query in enumerate(queries):
        got = np.sort(index.query(query).row_ids)
        want = reference_answer(table, query)
        assert np.array_equal(got, want), (
            f"{type(index).__name__} wrong answer at query #{position} "
            f"(phase {getattr(index, 'phase', '?')}): "
            f"{got.size} rows, expected {want.size}"
        )
        monitor.assert_ok()


@pytest.mark.parametrize("cls", [ProgressiveKDTree, GreedyProgressiveKDTree])
@pytest.mark.parametrize("delta", [0.05, 0.25, 1.0])
@pytest.mark.parametrize("size_threshold", [32, 256])
def test_progressive_correct_at_every_intermediate_state(
    cls, delta, size_threshold
):
    table = make_uniform_table(3_000, 2, seed=60)
    queries = make_queries(table, N_QUERIES, width_fraction=0.15, seed=61)
    index = cls(table, delta=delta, size_threshold=size_threshold)
    drive_checked(index, table, queries)


@pytest.mark.parametrize("cls", [ProgressiveKDTree, GreedyProgressiveKDTree])
def test_progressive_correct_through_convergence(cls):
    """The maximum delta forces the full phase walk — CREATION through
    REFINEMENT to CONVERGED — inside the workload; the answers and the
    structure must hold at each step and the phases must actually occur."""
    table = make_uniform_table(2_000, 2, seed=62)
    queries = make_queries(table, N_QUERIES, width_fraction=0.2, seed=63)
    index = cls(table, delta=1.0, size_threshold=64)
    monitor = InvariantMonitor(index)
    phases_seen = set()
    for query in queries:
        phases_seen.add(index.phase)
        got = np.sort(index.query(query).row_ids)
        assert np.array_equal(got, reference_answer(table, query))
        monitor.assert_ok()
    assert index.converged
    assert {"creation", "refinement"} <= {p.lower() for p in phases_seen}


@pytest.mark.parametrize("cls", [ProgressiveKDTree, GreedyProgressiveKDTree])
def test_converged_tree_is_workload_independent(cls):
    """Determinism: on integer-valued data the converged progressive tree
    equals the up-front mean-pivot KD-Tree, whatever workload drove it."""
    rng = np.random.default_rng(64)
    from repro import Table

    table = Table.from_matrix(
        rng.integers(0, 1_000, size=(2_000, 2)).astype(np.float64)
    )
    for seed in (65, 66):
        index = cls(table, delta=1.0, size_threshold=64)
        queries = make_queries(table, N_QUERIES, width_fraction=0.3, seed=seed)
        for query in queries:
            index.query(query)
        assert index.converged
        assert convergence_determinism_errors(index) == []


def test_interleaved_progressive_indexes_do_not_interfere():
    """Two indexes over the same base table refine independently; the
    monitor (which holds per-index history) stays clean for both."""
    table = make_uniform_table(2_000, 2, seed=67)
    queries = make_queries(table, N_QUERIES, width_fraction=0.15, seed=68)
    first = ProgressiveKDTree(table, delta=0.3, size_threshold=64)
    second = GreedyProgressiveKDTree(table, delta=0.3, size_threshold=64)
    monitors = [InvariantMonitor(first), InvariantMonitor(second)]
    for query in queries:
        for index, monitor in zip((first, second), monitors):
            got = np.sort(index.query(query).row_ids)
            assert np.array_equal(got, reference_answer(table, query))
            monitor.assert_ok()
