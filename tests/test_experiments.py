"""Experiment entry points (one per paper table/figure) at tiny scale.

These check structure and the headline shape relations, not absolute
numbers — the benchmark scripts run the full scaled versions.
"""

import numpy as np
import pytest

from repro.bench.experiments import (
    Scale,
    fig5_delta_impact,
    fig6a_genomics_cumulative,
    fig6b_per_query,
    fig6c_breakdown,
    fig6d_index_size,
    fig7_interactivity,
    grid_runs,
    standard_workloads,
    table2_first_query,
    table3_payoff,
    table4_robustness,
    table5_total_time,
    table6_dimensionality,
)

TINY = Scale(
    n_small=3_000,
    n_large=6_000,
    n_queries=15,
    real_rows=2_500,
    real_queries=15,
    size_threshold=256,
)


@pytest.fixture(scope="module", autouse=True)
def serial_schedule():
    """Paper tables describe the *serial* refinement schedule, and the
    tiny-scale timing columns drown in fan-out dispatch noise — pin both
    parallel tiers off for the whole module, regardless of any ambient
    REPRO_PARALLEL / REPRO_PROCS environment (each tier's own suite
    covers the fan-out paths)."""
    from repro.parallel import config as par_config
    from repro.parallel import procpool

    workers, procs = par_config.get_workers(), procpool.get_process_workers()
    par_config.set_workers(1)
    procpool.set_process_workers(1)
    yield
    par_config.set_workers(workers)
    procpool.set_process_workers(procs)


@pytest.fixture(scope="module")
def runs():
    return grid_runs(TINY)


class TestGrid:
    def test_workload_lineup(self):
        names = [w.name for w in standard_workloads(TINY)]
        assert "Unif(8)" in names
        assert "Seq(2)" in names
        assert "Shift(8)" in names
        assert "Power" in names and "Genomics" in names and "Skyserver" in names
        assert "Unif(8) L" in names
        assert len(names) == 14  # the Table II-V grid

    def test_runs_cached(self, runs):
        again = grid_runs(TINY)
        for key in runs:
            assert runs[key] is again[key]


class TestTables:
    def test_table2_shape_and_ordering(self, runs):
        headers, rows = table2_first_query(TINY)
        assert headers[0] == "Workload"
        assert len(rows) == 14
        by_name = {row[0]: row[1:] for row in rows}
        unif = dict(zip(headers[1:], by_name["Unif(8)"]))
        # Paper Table II ordering on the uniform workload.
        assert unif["MedKD"] >= unif["AvgKD"] > unif["AKD"]
        assert unif["Q"] > unif["PKD(0.2)"]
        assert unif["AKD"] > unif["PKD(0.2)"]

    def test_table3_baseline_column_empty(self, runs):
        headers, rows = table3_payoff(TINY)
        fs_column = headers.index("FS")
        for row in rows:
            assert row[fs_column] is None

    def test_table4_progressive_most_robust(self, runs):
        headers, rows = table4_robustness(TINY)
        assert headers == ["Workload", "Q", "AKD", "PKD(0.2)", "GPKD(0.2)"]
        wins = 0
        for row in rows:
            values = row[1:]
            # A progressive index (PKD or GPKD) has the lowest variance;
            # at tiny scale wall-clock noise blurs which of the two wins.
            if min(values[2:]) == min(values):
                wins += 1
        assert wins >= (3 * len(rows)) // 4

    def test_table5_totals_positive(self, runs):
        _, rows = table5_total_time(TINY)
        for row in rows:
            assert all(value > 0 for value in row[1:])

    def test_table6_sections(self):
        sections = table6_dimensionality(TINY, dims=(2, 4))
        assert [s[0] for s in sections] == ["Unif(2)", "Unif(4)"]
        for _, headers, rows in sections:
            assert [row[0] for row in rows] == [
                "First Query",
                "PayOff",
                "Convergence",
                "Robustness",
                "Time",
            ]
            convergence = rows[2]
            # Q/AKD/FS report no convergence (dash in the paper).
            for algorithm, value in zip(headers[1:], convergence[1:]):
                if algorithm in ("Q", "AKD", "FS"):
                    assert value is None


class TestFig5:
    # Convergence needs enough queries in the workload; give the delta
    # sweep a longer tail than the table grid uses.
    FIG5 = Scale(
        n_small=3_000,
        n_large=6_000,
        n_queries=80,
        real_rows=2_500,
        real_queries=15,
        size_threshold=256,
    )

    def test_delta_sweep_shapes(self):
        results = fig5_delta_impact(self.FIG5, deltas=(0.25, 0.5, 1.0), dims=(2, 3))
        for d, data in results.items():
            assert len(data["first_query"]) == 3
            # 5a: costs populated (the grows-with-delta trend is asserted
            # at full scale in the bench; at 3k rows it sits inside
            # wall-clock noise, while the deterministic version is covered
            # by test_progressive_kdtree's work-based delta scaling test).
            assert all(value > 0 for value in data["first_query"])
            # 5c: convergence time exists for every delta at this scale.
            assert all(value is not None for value in data["convergence_seconds"])
            # references present
            assert set(data["references"]) == {"FS", "AKD", "Q", "AvgKD", "MedKD"}

    def test_after_convergence_cheaper_than_total(self):
        results = fig5_delta_impact(self.FIG5, deltas=(0.5,), dims=(2,))
        data = results[2]
        assert data["after_convergence_seconds"][0] is not None
        assert data["after_convergence_seconds"][0] < data["total_seconds"][0]


class TestFig6:
    def test_fig6a_cumulative_monotone(self):
        xs, series = fig6a_genomics_cumulative(TINY, n_queries=10)
        assert xs == list(range(1, 11))
        for name, values in series:
            assert (np.diff(values) >= 0).all()

    def test_fig6b_series_present(self):
        xs, series = fig6b_per_query(TINY, n_queries=10)
        names = [name for name, _ in series]
        assert names == ["Q", "AKD", "PKD(0.2)", "GPKD(0.2)"]

    def test_fig6c_breakdown_phases(self):
        breakdown = fig6c_breakdown(TINY)
        assert set(breakdown) == {"Q", "AKD"}
        for phases in breakdown.values():
            assert set(phases) == {
                "initialization",
                "adaptation",
                "index_search",
                "scan",
            }

    def test_fig6d_quasii_builds_more_nodes(self):
        _, series = fig6d_index_size(TINY)
        by_name = dict(series)
        assert by_name["Q"][-1] > by_name["AKD"][-1]
        assert all(b >= a for a, b in zip(by_name["AKD"], by_name["AKD"][1:]))


class TestFig7:
    def test_shape(self):
        out = fig7_interactivity(TINY, n_queries=20, query_limit=5)
        names = [name for name, _ in out["series"]]
        assert names == ["FS", "AKD", "PKD(0.2)", "GPFP(0.2)", "GPFQ(5)"]
        tau = out["tau"]
        by_name = dict(out["series"])
        # FS never gets under tau (tau is half its own mean cost); AKD pays
        # a big first query, then settles under tau once its region of the
        # data is cracked.
        assert all(value > tau for value in by_name["FS"])
        assert by_name["AKD"][0] > 3 * tau
        # Settles far below the first query; at this tiny scale the tree is
        # only a few levels deep, so "under tau" is only approached.
        assert np.median(by_name["AKD"][8:]) < 2 * tau
        assert np.median(by_name["AKD"][8:]) < by_name["AKD"][0] / 10
        # GPFQ holds its spread for the first x queries, then drops.
        gpfq = by_name["GPFQ(5)"]
        assert gpfq[5] < gpfq[3]
