"""Space-filling-curve cracking: Z-order encoding and the index."""

import numpy as np
import pytest

from repro import InvalidParameterError, SFCCracking
from repro.baselines.sfc_cracking import morton_encode, quantize
from tests.conftest import assert_correct, make_queries, make_uniform_table


class TestQuantize:
    def test_range_mapping(self):
        values = np.array([0.0, 50.0, 100.0])
        cells = quantize(values, 0.0, 100.0, bits=4)
        assert cells[0] == 0
        assert cells[-1] == 15  # clamped at the top cell

    def test_monotone(self):
        rng = np.random.default_rng(0)
        values = np.sort(rng.random(100) * 42.0)
        cells = quantize(values, 0.0, 42.0, bits=8)
        assert (np.diff(cells.astype(np.int64)) >= 0).all()

    def test_clamps_out_of_range(self):
        cells = quantize(np.array([-10.0, 200.0]), 0.0, 100.0, bits=4)
        assert cells[0] == 0 and cells[1] == 15

    def test_constant_domain(self):
        cells = quantize(np.array([5.0, 5.0]), 5.0, 5.0, bits=4)
        assert (cells == 0).all()

    def test_scalar_input(self):
        assert quantize(50.0, 0.0, 100.0, bits=4) == 8


class TestMortonEncode:
    def test_known_interleaving(self):
        # x=0b11, y=0b00 at 2 bits, 2 dims: key bits x at even positions.
        cells = np.array([[0b11], [0b00]], dtype=np.uint64)
        assert morton_encode(cells, bits=2)[0] == 0b0101

    def test_monotone_per_coordinate(self):
        rng = np.random.default_rng(1)
        base = rng.integers(0, 15, size=(3, 50)).astype(np.uint64)
        bumped = base.copy()
        bumped[1] += 1  # increase one coordinate everywhere
        low = morton_encode(base, bits=5)
        high = morton_encode(bumped, bits=5)
        assert (high > low).all()

    def test_distinct_cells_distinct_keys(self):
        cells = np.array([[0, 1, 2, 3], [3, 2, 1, 0]], dtype=np.uint64)
        keys = morton_encode(cells, bits=2)
        assert len(set(keys.tolist())) == 4

    def test_rejects_key_overflow(self):
        cells = np.zeros((8, 1), dtype=np.uint64)
        with pytest.raises(InvalidParameterError):
            morton_encode(cells, bits=8)


class TestSFCCracking:
    def test_correct_on_uniform(self, small_table, small_queries):
        assert_correct(SFCCracking(small_table), small_table, small_queries)

    def test_correct_on_duplicates(self, duplicate_table):
        queries = make_queries(duplicate_table, 15, width_fraction=0.3, seed=4)
        assert_correct(SFCCracking(duplicate_table), duplicate_table, queries)

    def test_correct_high_dims(self):
        table = make_uniform_table(1_500, 6, seed=5)
        queries = make_queries(table, 10, width_fraction=0.4, seed=6)
        assert_correct(SFCCracking(table), table, queries)

    def test_first_query_pays_mapping(self, small_table, small_queries):
        index = SFCCracking(small_table)
        first = index.query(small_queries[0]).stats
        later = index.query(small_queries[1]).stats
        # The curve mapping dominates the first query (the paper's point).
        assert first.copied > small_table.n_rows
        assert later.copied < first.copied

    def test_default_bits_fit_key(self):
        for d in (1, 2, 4, 8, 16):
            table = make_uniform_table(100, d, seed=d)
            index = SFCCracking(table)
            assert index.bits_per_dim * d <= 63

    def test_invalid_bits_rejected(self, small_table):
        with pytest.raises(InvalidParameterError):
            SFCCracking(small_table, bits_per_dim=0)
        with pytest.raises(InvalidParameterError):
            SFCCracking(small_table, bits_per_dim=30)

    def test_node_count_grows(self, small_table, small_queries):
        index = SFCCracking(small_table)
        index.query(small_queries[0])
        first = index.node_count
        index.query(small_queries[1])
        assert index.node_count >= first
