"""Tree introspection helpers."""

import numpy as np

from repro import AdaptiveKDTree, AverageKDTree, ProgressiveKDTree
from repro.core.inspect import export_dot, render_tree, summarize_tree
from repro.core.kdtree import KDTree
from tests.conftest import make_queries, make_uniform_table


def built_index():
    table = make_uniform_table(2_000, 2, seed=40)
    index = AverageKDTree(table, size_threshold=128)
    index.query(make_queries(table, 1, seed=41)[0])
    return index


class TestSummary:
    def test_counts_match_tree(self):
        index = built_index()
        summary = summarize_tree(index.tree)
        assert summary.n_internal == index.tree.node_count
        assert summary.n_leaves == index.tree.leaf_count
        assert summary.height == index.tree.height()
        assert summary.n_rows == 2_000

    def test_leaf_sizes_tile_table(self):
        index = built_index()
        summary = summarize_tree(index.tree)
        assert summary.min_leaf >= 1
        assert summary.max_leaf <= 128
        assert summary.mean_leaf * summary.n_leaves == 2_000

    def test_dims_used_round_robin(self):
        index = built_index()
        summary = summarize_tree(index.tree)
        # Mean-pivot full build alternates dims, so both get splits.
        assert all(count > 0 for count in summary.dims_used)

    def test_balance_reasonable_for_full_build(self):
        index = built_index()
        summary = summarize_tree(index.tree)
        assert 0.8 <= summary.balance <= 3.0

    def test_adaptive_sequential_is_unbalanced(self):
        from repro.workloads.patterns import sequential_queries

        table = make_uniform_table(3_000, 2, seed=42)
        index = AdaptiveKDTree(table, size_threshold=16)
        for query in sequential_queries(table, 40, 0.0005, seed=43):
            index.query(query)
        summary = summarize_tree(index.tree)
        assert summary.balance > 3.0  # the linked-list degeneration

    def test_converged_leaves_counted(self):
        table = make_uniform_table(1_000, 2, seed=44)
        index = ProgressiveKDTree(table, delta=1.0, size_threshold=64)
        queries = make_queries(table, 30, seed=45)
        for query in queries:
            index.query(query)
            if index.converged:
                break
        summary = summarize_tree(index.tree)
        assert summary.converged_leaves == summary.n_leaves

    def test_str_is_readable(self):
        summary = summarize_tree(built_index().tree)
        text = str(summary)
        assert "pieces" in text and "height" in text

    def test_single_piece_tree(self):
        tree = KDTree(100, 2)
        summary = summarize_tree(tree)
        assert summary.n_internal == 0
        assert summary.n_leaves == 1
        assert summary.height == 0


class TestRenderTree:
    def test_contains_split_keys(self):
        index = built_index()
        text = render_tree(index.tree, max_depth=3)
        assert "dim0 <=" in text
        assert "[0," in text

    def test_depth_limit(self):
        index = built_index()
        text = render_tree(index.tree, max_depth=1)
        assert "elided" in text

    def test_node_limit(self):
        index = built_index()
        text = render_tree(index.tree, max_depth=50, max_nodes=5)
        assert "limit reached" in text

    def test_single_piece(self):
        tree = KDTree(10, 1)
        assert render_tree(tree) == "[0,10)"


class TestExportDot:
    def test_valid_dot_structure(self):
        index = built_index()
        dot = export_dot(index.tree)
        assert dot.startswith("digraph kdtree {")
        assert dot.rstrip().endswith("}")
        assert dot.count("->") == 2 * index.tree.node_count

    def test_leaves_marked(self):
        index = built_index()
        assert "style=filled" in export_dot(index.tree)

    def test_custom_name(self):
        tree = KDTree(10, 1)
        assert "digraph mytree {" in export_dot(tree, name="mytree")
