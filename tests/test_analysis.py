"""Workload analysis: overlap, profiles, and the pattern signatures."""

import numpy as np
import pytest

from repro import RangeQuery
from repro.workloads import make_synthetic_workload, skyserver_workload
from repro.workloads.analysis import (
    describe,
    profile_workload,
    query_overlap,
)


class TestQueryOverlap:
    def test_identical_boxes(self):
        query = RangeQuery([0.0, 0.0], [1.0, 1.0])
        assert query_overlap(query, query) == pytest.approx(1.0)

    def test_disjoint_boxes(self):
        a = RangeQuery([0.0], [1.0])
        b = RangeQuery([2.0], [3.0])
        assert query_overlap(a, b) == 0.0

    def test_touching_boxes_do_not_overlap(self):
        a = RangeQuery([0.0], [1.0])
        b = RangeQuery([1.0], [2.0])
        assert query_overlap(a, b) == 0.0

    def test_half_overlap(self):
        a = RangeQuery([0.0], [2.0])
        b = RangeQuery([1.0], [3.0])
        # intersection 1, union 3.
        assert query_overlap(a, b) == pytest.approx(1 / 3)

    def test_containment(self):
        outer = RangeQuery([0.0], [4.0])
        inner = RangeQuery([1.0], [2.0])
        assert query_overlap(outer, inner) == pytest.approx(1 / 4)

    def test_symmetry(self):
        a = RangeQuery([0.0, 0.0], [2.0, 2.0])
        b = RangeQuery([1.0, 1.0], [3.0, 4.0])
        assert query_overlap(a, b) == pytest.approx(query_overlap(b, a))

    def test_multidim_product(self):
        a = RangeQuery([0.0, 0.0], [2.0, 2.0])
        b = RangeQuery([1.0, 1.0], [3.0, 3.0])
        # per-dim overlap 1 of union 3 each -> 1/(4+4-1).
        assert query_overlap(a, b) == pytest.approx(1 / 7)


class TestPatternSignatures:
    def make(self, pattern, **kwargs):
        workload = make_synthetic_workload(
            pattern, 4_000, 2, 60, kwargs.pop("selectivity", 0.01), seed=3,
            **kwargs,
        )
        return profile_workload(workload)

    def test_sequential_is_sweeping(self):
        profile = self.make("sequential", selectivity=1e-4)
        assert profile.is_sweeping
        assert not profile.is_repetitive

    def test_skewed_is_repetitive(self):
        profile = self.make("skewed")
        assert profile.is_repetitive

    def test_zoom_revisits(self):
        profile = self.make("zoom")
        assert profile.revisit_overlap > self.make("sequential", selectivity=1e-4).revisit_overlap

    def test_uniform_covers_domain(self):
        profile = self.make("uniform")
        assert (profile.domain_coverage > 0.8).all()

    def test_sequential_drifts_slowly(self):
        sweep = self.make("sequential", selectivity=1e-4)
        random = self.make("uniform")
        assert sweep.drift < random.drift

    def test_selectivity_estimate(self):
        profile = self.make("uniform")
        assert 0.001 < profile.mean_selectivity < 0.05

    def test_skyserver_is_repetitive(self):
        workload = skyserver_workload(n_rows=4_000, n_queries=150, seed=5)
        profile = profile_workload(workload)
        assert profile.is_repetitive

    def test_shift_profiles_one_group(self):
        workload = make_synthetic_workload(
            "shift", 2_000, 2, 30, 0.01, seed=4, n_groups=3,
            queries_per_shift=10,
        )
        profile = profile_workload(workload)
        assert profile.n_dims == 2

    def test_sampling_caps_cost(self):
        workload = make_synthetic_workload("uniform", 2_000, 2, 400, 0.01, seed=6)
        profile = profile_workload(workload, sample=50)
        assert profile.n_queries == 400  # reported size is the real one


class TestDescribe:
    def test_mentions_suggestion(self):
        profile = profile_workload(
            make_synthetic_workload("sequential", 2_000, 2, 40, 1e-4, seed=7)
        )
        text = describe(profile)
        assert "Progressive" in text

    def test_repetitive_suggests_adaptive(self):
        profile = profile_workload(
            make_synthetic_workload("skewed", 2_000, 2, 40, 0.01, seed=8)
        )
        assert "Adaptive KD-Tree" in describe(profile)


class TestWorkloadsCLI:
    def test_list(self, capsys):
        from repro.workloads.__main__ import main

        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "uniform" in out and "skyserver" in out

    def test_profile_synthetic(self, capsys):
        from repro.workloads.__main__ import main

        assert main(
            ["profile", "zoom", "--rows", "2000", "--queries", "30"]
        ) == 0
        out = capsys.readouterr().out
        assert "Zoom" in out and "selectivity" in out

    def test_profile_real(self, capsys):
        from repro.workloads.__main__ import main

        assert main(["profile", "power", "--rows", "2000", "--queries", "20"]) == 0
        assert "Power" in capsys.readouterr().out
