"""Error hierarchy and cross-module error behaviour."""

import pytest

from repro import (
    IndexStateError,
    InvalidParameterError,
    InvalidQueryError,
    InvalidTableError,
    ReproError,
    WorkloadError,
)


class TestHierarchy:
    @pytest.mark.parametrize(
        "exception",
        [
            InvalidQueryError,
            InvalidTableError,
            InvalidParameterError,
            IndexStateError,
            WorkloadError,
        ],
    )
    def test_all_derive_from_repro_error(self, exception):
        assert issubclass(exception, ReproError)
        assert issubclass(exception, Exception)

    def test_catchable_as_base(self):
        with pytest.raises(ReproError):
            raise InvalidQueryError("bad")

    def test_not_swallowing_builtins(self):
        assert not issubclass(ValueError, ReproError)
