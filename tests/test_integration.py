"""End-to-end integration: every technique against every workload pattern,
plus cross-technique behavioural comparisons from the paper's narrative."""

import numpy as np
import pytest

from repro import AverageKDTree, ProgressiveKDTree
from repro.bench import run_workload
from repro.bench.measures import total_seconds, total_work, variance
from repro.workloads import (
    SYNTHETIC_PATTERNS,
    genomics_workload,
    make_synthetic_workload,
    power_workload,
    skyserver_workload,
)

ALGORITHMS = ["FS", "AvgKD", "MedKD", "Q", "AKD", "PKD", "GPKD", "SFC"]
PATTERNS = sorted(SYNTHETIC_PATTERNS) + ["shift"]


class TestEveryAlgorithmOnEveryPattern:
    @pytest.mark.parametrize("pattern", PATTERNS)
    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_correct_answers(self, pattern, algorithm):
        if pattern == "shift" and algorithm == "SFC":
            pytest.skip("SFC over rotating column groups is out of scope")
        workload = make_synthetic_workload(
            pattern, 1_200, 2, 12, 0.01, seed=17
        )
        run_workload(
            algorithm,
            workload,
            size_threshold=64,
            validate=True,
            delta=0.3,
        )


class TestRealWorkloads:
    @pytest.mark.parametrize("algorithm", ["FS", "AKD", "PKD", "GPKD", "Q"])
    def test_power(self, algorithm):
        workload = power_workload(n_rows=2_000, n_queries=10)
        run_workload(algorithm, workload, size_threshold=64, validate=True)

    @pytest.mark.parametrize("algorithm", ["FS", "AKD", "PKD", "Q"])
    def test_skyserver(self, algorithm):
        workload = skyserver_workload(n_rows=2_000, n_queries=10)
        run_workload(algorithm, workload, size_threshold=64, validate=True)

    @pytest.mark.parametrize("algorithm", ["FS", "AKD", "PKD"])
    def test_genomics(self, algorithm):
        workload = genomics_workload(n_rows=1_500, n_queries=8)
        run_workload(algorithm, workload, size_threshold=64, validate=True)


class TestPaperNarrative:
    """Behavioural claims from Section IV, checked in work units."""

    @pytest.fixture(scope="class")
    def uniform_runs(self, request):
        # Section IV's per-query work claims describe the *serial*
        # refinement schedule; the round-based parallel refiner spreads
        # budget onto extra pieces per round (see ``_pick_pieces``), so
        # fan-out is pinned off regardless of any ambient
        # REPRO_PARALLEL / REPRO_PROCS environment.
        from repro.parallel import config as par_config
        from repro.parallel import procpool

        workers, procs = par_config.get_workers(), procpool.get_process_workers()
        par_config.set_workers(1)
        procpool.set_process_workers(1)
        request.addfinalizer(lambda: par_config.set_workers(workers))
        request.addfinalizer(lambda: procpool.set_process_workers(procs))
        workload = make_synthetic_workload("uniform", 6_000, 3, 60, 0.01, seed=23)
        return {
            name: run_workload(name, workload, size_threshold=128, delta=0.2)
            for name in ("FS", "AvgKD", "MedKD", "Q", "AKD", "PKD", "GPKD")
        }

    def test_first_query_ordering(self, uniform_runs):
        # Full indexes > adaptive > progressive > scan (Table II shape).
        first = {name: run.work()[0] for name, run in uniform_runs.items()}
        assert first["MedKD"] >= first["AvgKD"] > first["AKD"]
        assert first["Q"] > first["AKD"]
        assert first["AKD"] > first["PKD"]
        assert first["PKD"] < first["FS"] * 3
        assert first["FS"] < first["PKD"]

    def test_robustness_ordering(self, uniform_runs):
        # GPKD most robust; progressive beats adaptive (Table IV shape).
        spread = {
            name: variance(run, use_work=True) for name, run in uniform_runs.items()
        }
        assert spread["GPKD"] < spread["PKD"]
        assert spread["GPKD"] < spread["AKD"]
        assert spread["GPKD"] < spread["Q"]

    def test_adaptive_wins_total_time(self, uniform_runs):
        # AKD has the lowest total among incremental indexes on uniform.
        totals = {name: total_work(run) for name, run in uniform_runs.items()}
        assert totals["AKD"] < totals["PKD"]
        assert totals["AKD"] < totals["FS"]

    def test_everything_beats_fullscan_eventually(self, uniform_runs):
        totals = {name: total_work(run) for name, run in uniform_runs.items()}
        for name in ("AvgKD", "AKD", "Q"):
            assert totals[name] < totals["FS"]

    def test_converged_progressive_tracks_full_index(self):
        # After convergence, PKD per-query work matches AvgKD's.
        workload = make_synthetic_workload("uniform", 4_000, 2, 80, 0.01, seed=29)
        pkd = run_workload("PKD", workload, size_threshold=128, delta=0.5)
        avg = run_workload("AvgKD", workload, size_threshold=128)
        at = pkd.converged_at()
        assert at is not None
        pkd_tail = pkd.work()[at + 1 :]
        avg_tail = avg.work()[at + 1 :]
        assert pkd_tail.size > 10
        assert pkd_tail.mean() < avg_tail.mean() * 1.5

    def test_shift_resists_indexing(self):
        # Paper: on Shift no algorithm except AKD pays off, because every
        # ten queries the investment is thrown away.  At our scale the
        # robust signals are: nothing converges, the aggressive refiner
        # (QUASII) pays the most, and the scan stays competitive (at the
        # paper's 50M rows AKD additionally undercuts FS — a pure scale
        # effect the work counters make explicit).
        workload = make_synthetic_workload(
            "shift", 4_000, 3, 40, 0.01, seed=31,
            n_groups=4, queries_per_shift=10,
        )
        runs = {
            name: run_workload(name, workload, size_threshold=128, delta=0.2)
            for name in ("FS", "AKD", "MedKD", "PKD", "Q")
        }
        totals = {name: total_work(run) for name, run in runs.items()}
        assert totals["FS"] <= min(totals.values())
        assert totals["Q"] > totals["AKD"] > totals["PKD"]
        for name in ("AKD", "PKD", "Q"):
            assert runs[name].converged_at() is None

    def test_sequential_is_adaptive_worst_case(self):
        workload = make_synthetic_workload(
            "sequential", 4_000, 2, 60, 1e-4, seed=37
        )
        akd = total_work(run_workload("AKD", workload, size_threshold=64))
        pkd = total_work(
            run_workload("PKD", workload, size_threshold=64, delta=0.2)
        )
        # Progressive indexing shrugs off the sweep; AKD degenerates.
        assert pkd < akd


class TestRepeatability:
    def test_runs_are_deterministic_in_work_units(self):
        workload = make_synthetic_workload("uniform", 2_000, 2, 15, 0.01, seed=41)
        first = run_workload("AKD", workload, size_threshold=64).work()
        second = run_workload("AKD", workload, size_threshold=64).work()
        assert np.array_equal(first, second)

    def test_progressive_structure_identical_across_runs(self):
        workload = make_synthetic_workload("uniform", 2_000, 2, 30, 0.01, seed=43)
        trees = []
        for _ in range(2):
            index = ProgressiveKDTree(workload.table, delta=0.3, size_threshold=64)
            for query in workload.queries:
                index.query(query)
            trees.append(
                sorted((leaf.start, leaf.end) for leaf in index.tree.iter_leaves())
            )
        assert trees[0] == trees[1]
