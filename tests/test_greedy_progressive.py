"""Greedy Progressive KD-Tree: constant gross cost, reactive top-up, tau."""

import numpy as np
import pytest

from repro import (
    CostModel,
    GreedyProgressiveKDTree,
    InvalidParameterError,
    MachineProfile,
    ProgressiveKDTree,
)
from tests.conftest import assert_correct, make_queries, make_uniform_table


def model_for(table):
    return CostModel(
        MachineProfile.deterministic(), table.n_rows, table.n_columns
    )


class TestCorrectness:
    @pytest.mark.parametrize("delta", [0.1, 0.3, 1.0])
    def test_correct_at_every_stage(self, small_table, small_queries, delta):
        index = GreedyProgressiveKDTree(
            small_table, delta=delta, size_threshold=64
        )
        assert_correct(index, small_table, small_queries)

    def test_correct_on_duplicates(self, duplicate_table):
        queries = make_queries(duplicate_table, 25, width_fraction=0.3, seed=3)
        index = GreedyProgressiveKDTree(
            duplicate_table, delta=0.2, size_threshold=32
        )
        assert_correct(index, duplicate_table, queries)

    def test_correct_with_tau_and_query_limit(self):
        table = make_uniform_table(5_000, 2, seed=1)
        model = model_for(table)
        index = GreedyProgressiveKDTree(
            table,
            delta=0.2,
            size_threshold=64,
            tau=model.full_scan_seconds() / 3,
            query_limit=5,
            cost_model=model,
        )
        assert_correct(index, table, make_queries(table, 15, seed=2))


class TestGreedyInvariant:
    def test_gross_model_cost_constant_until_convergence(self, small_table):
        """The core GPKD property: every query's gross model-domain cost
        stays at t_total (within the reactive slack) until convergence."""
        model = model_for(small_table)
        index = GreedyProgressiveKDTree(
            small_table, delta=0.2, size_threshold=64, cost_model=model
        )
        queries = make_queries(small_table, 60, seed=4)
        gross = []
        for query in queries:
            stats = index.query(query).stats
            if index.converged:
                break
            gross.append(model.seconds_of(stats))
        assert len(gross) >= 3
        target = gross[0]
        for cost in gross:
            assert cost == pytest.approx(target, rel=0.25)

    def test_lower_variance_than_plain_progressive(self, small_table):
        model = model_for(small_table)
        queries = make_queries(small_table, 80, seed=5)

        def work_variance(index):
            series = []
            for query in queries:
                stats = index.query(query).stats
                if index.converged:
                    break  # the converging query is partial by definition
                series.append(model.seconds_of(stats))
            return float(np.var(series))

        greedy_var = work_variance(
            GreedyProgressiveKDTree(
                small_table, delta=0.2, size_threshold=64, cost_model=model
            )
        )
        plain_var = work_variance(
            ProgressiveKDTree(
                small_table, delta=0.2, size_threshold=64, cost_model=model
            )
        )
        assert greedy_var < plain_var

    def test_converges_at_least_as_fast_as_plain(self, small_table):
        model = model_for(small_table)
        queries = make_queries(small_table, 200, seed=6)

        def queries_to_converge(index):
            for position, query in enumerate(queries):
                index.query(query)
                if index.converged:
                    return position
            return len(queries)

        greedy = queries_to_converge(
            GreedyProgressiveKDTree(
                small_table, delta=0.2, size_threshold=64, cost_model=model
            )
        )
        plain = queries_to_converge(
            ProgressiveKDTree(
                small_table, delta=0.2, size_threshold=64, cost_model=model
            )
        )
        assert greedy <= plain

    def test_reactive_phase_tops_up_cheap_queries(self, small_table):
        # A tiny query leaves headroom; the reactive phase must spend it,
        # so indexing work exceeds the base delta budget.
        model = model_for(small_table)
        index = GreedyProgressiveKDTree(
            small_table, delta=0.05, size_threshold=64, cost_model=model
        )
        queries = make_queries(small_table, 3, width_fraction=0.02, seed=7)
        index.query(queries[0])  # establishes t_total
        stats = index.query(queries[1]).stats
        base_budget_rows = 0.05 * small_table.n_rows
        d = small_table.n_columns
        assert stats.indexing_work > base_budget_rows * (d + 1)

    def test_first_query_uses_user_delta(self, small_table):
        model = model_for(small_table)
        index = GreedyProgressiveKDTree(
            small_table, delta=0.3, size_threshold=64, cost_model=model
        )
        query = make_queries(small_table, 1, seed=8)[0]
        stats = index.query(query).stats
        copied_rows = stats.copied / (small_table.n_columns + 1)
        assert copied_rows >= 0.3 * small_table.n_rows * 0.99


class TestInteractivityModes:
    def test_tau_mode_caps_every_query(self):
        # Situation (1): scan fits under tau -> t_total = tau.
        table = make_uniform_table(4_000, 2, seed=9)
        model = model_for(table)
        tau = model.full_scan_seconds() * 3
        index = GreedyProgressiveKDTree(
            table, delta=0.9, size_threshold=64, tau=tau, cost_model=model
        )
        for query in make_queries(table, 150, seed=10):
            stats = index.query(query).stats
            assert model.seconds_of(stats) <= tau * 1.1
            if index.converged:
                break
        assert index.converged

    def test_query_limit_spreads_work(self):
        # Situation (2b): scan above tau, spread over x queries, then the
        # per-query cost drops below tau.
        table = make_uniform_table(6_000, 2, seed=11)
        model = model_for(table)
        tau = model.full_scan_seconds() / 2
        limit = 6
        index = GreedyProgressiveKDTree(
            table,
            delta=0.2,
            size_threshold=64,
            tau=tau,
            query_limit=limit,
            cost_model=model,
        )
        queries = make_queries(table, 30, seed=12)
        costs = [model.seconds_of(index.query(q).stats) for q in queries]
        # Above tau during the spread, then a drop to (about) tau: after
        # the spread the greedy target becomes tau itself.
        assert all(cost > 2 * tau for cost in costs[: limit - 1])
        assert costs[limit] <= tau * 1.05
        assert np.median(costs[limit:]) <= tau * 1.1

    def test_fixed_penalty_mode_drops_below_tau_eventually(self):
        table = make_uniform_table(6_000, 2, seed=13)
        model = model_for(table)
        tau = model.full_scan_seconds() / 2
        index = GreedyProgressiveKDTree(
            table, delta=0.3, size_threshold=64, tau=tau, cost_model=model
        )
        queries = make_queries(table, 40, seed=14)
        costs = [model.seconds_of(index.query(q).stats) for q in queries]
        assert costs[0] > tau * 1.2  # scan alone already exceeds tau
        # Fig. 7's first drop: the per-query cost falls to the threshold
        # cost once enough of the index is built.
        assert min(costs) <= tau * 1.05
        assert costs[-1] < costs[0] / 2


class TestValidation:
    def test_invalid_query_limit(self, small_table):
        with pytest.raises(InvalidParameterError):
            GreedyProgressiveKDTree(small_table, query_limit=0)

    def test_inherits_progressive_validation(self, small_table):
        with pytest.raises(InvalidParameterError):
            GreedyProgressiveKDTree(small_table, delta=0.0)

    def test_delta_used_reported(self, small_table, small_queries):
        index = GreedyProgressiveKDTree(small_table, delta=0.2, size_threshold=64)
        stats = index.query(small_queries[0]).stats
        assert stats.delta_used is not None and stats.delta_used > 0
