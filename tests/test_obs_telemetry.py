"""The serving telemetry plane: exposition, SLOs, watchdog, traces, top.

Covers what PR 7 bolted onto the obs layer and the server:

* Prometheus text exposition — render/parse round trip, cumulative
  histogram buckets, the live HTTP exporter endpoint;
* the metrics registry under concurrent hammer (snapshots are never
  torn) and the reset-generation contract hot call sites cache by;
* contended-only lock wait histograms;
* the SLO engine (objectives, compliance, burn rate) and the watchdog's
  edge-triggered pathology events, driven by an injected clock;
* end-to-end request tracing over a real socket: one ``serve.query``
  root per request id, phase children, and the query->refinement
  funding link;
* the ``obs top`` dashboard renderer on synthetic scrapes.
"""

from __future__ import annotations

import threading
import urllib.error
import urllib.request

import pytest

import repro.obs as obs
from repro.obs import metrics as obs_metrics
from repro.obs.export import (
    CONTENT_TYPE,
    MetricsExporter,
    parse_exposition,
    render_exposition,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.sink import ListSink
from repro.obs.slo import SLOConfig, SLOEngine, Watchdog
from repro.obs.top import render_dashboard
from repro.serve import (
    IndexServer,
    PieceSnapshotLock,
    ServeClient,
    ServerThread,
    TableSpec,
)


@pytest.fixture(autouse=True)
def obs_off():
    """Every test starts and ends with observability fully off."""
    obs.disable()
    obs.REGISTRY.reset()
    yield
    obs.disable()
    obs.REGISTRY.reset()


def spans(records, name=None):
    found = [r for r in records if r["type"] == "span"]
    if name is not None:
        found = [r for r in found if r["name"] == name]
    return found


# ---------------------------------------------------------------- exposition


class TestExposition:
    def test_counter_gauge_histogram_round_trip(self):
        registry = MetricsRegistry()
        registry.counter("serve.queries", tenant="t0", mode="adaptive").inc(7)
        registry.gauge("serve.open_pieces", index="t0/t/c0").set(12)
        histogram = registry.histogram("serve.query_seconds", tenant="t0")
        histogram.observe(0.0005)
        histogram.observe(0.02)
        histogram.observe(0.02)
        text = render_exposition(registry)
        scrape = parse_exposition(text)
        assert (
            scrape.get("repro_serve_queries", tenant="t0", mode="adaptive")
            == 7
        )
        assert scrape.get("repro_serve_open_pieces", index="t0/t/c0") == 12
        assert scrape.get("repro_serve_query_seconds_count", tenant="t0") == 3
        assert scrape.get(
            "repro_serve_query_seconds_sum", tenant="t0"
        ) == pytest.approx(0.0405)
        assert scrape.types["repro_serve_queries"] == "counter"
        assert scrape.types["repro_serve_query_seconds"] == "histogram"

    def test_histogram_buckets_are_cumulative_and_capped_by_inf(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("h")
        for value in (1e-7, 1e-7, 0.005, 50.0):  # two tiny, one mid, one huge
            histogram.observe(value)
        scrape = parse_exposition(render_exposition(registry))
        series = scrape.series("repro_h_bucket")
        by_bound = {dict(key)["le"]: count for key, count in series.items()}
        assert by_bound["1e-06"] == 2
        assert by_bound["0.01"] == 3  # cumulative: includes the tiny two
        assert by_bound["10"] == 3  # the 50s observation is beyond 10s
        assert by_bound["+Inf"] == 4  # always the total count
        values = [by_bound[k] for k in sorted(by_bound, key=lambda b: float("inf") if b == "+Inf" else float(b))]
        assert values == sorted(values), "buckets must be monotone"

    def test_unset_gauges_are_skipped(self):
        registry = MetricsRegistry()
        registry.gauge("maybe")  # never .set()
        registry.counter("real").inc()
        text = render_exposition(registry)
        assert "repro_maybe" not in text
        assert "repro_real 1" in text

    def test_names_and_labels_are_sanitised(self):
        registry = MetricsRegistry()
        registry.counter("index.zone-map.pruned", **{"index": 'a"b\\c'}).inc()
        text = render_exposition(registry)
        scrape = parse_exposition(text)  # must not raise
        assert scrape.get("repro_index_zone_map_pruned", index='a"b\\c') == 1

    def test_histogram_quantile_from_scrape(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("lat", tenant="t")
        for _ in range(99):
            histogram.observe(0.0005)  # le=0.001 bucket
        histogram.observe(0.5)  # le=1.0 bucket
        scrape = parse_exposition(render_exposition(registry))
        assert scrape.histogram_quantile("repro_lat", 0.5, tenant="t") == 0.001
        assert scrape.histogram_quantile("repro_lat", 0.999, tenant="t") == 1.0
        assert scrape.histogram_quantile("repro_lat", 0.5, tenant="no") is None


class TestExporterEndpoint:
    def test_serves_registry_over_http(self):
        registry = MetricsRegistry()
        registry.counter("hits").inc(3)
        with MetricsExporter(port=0, registry=registry) as exporter:
            with urllib.request.urlopen(exporter.url, timeout=5) as response:
                assert response.headers["Content-Type"] == CONTENT_TYPE
                body = response.read().decode("utf-8")
        assert parse_exposition(body).get("repro_hits") == 3

    def test_extra_exposition_is_appended(self):
        registry = MetricsRegistry()
        with MetricsExporter(
            port=0, registry=registry, extra=lambda: "extra_family 42"
        ) as exporter:
            with urllib.request.urlopen(exporter.url, timeout=5) as response:
                body = response.read().decode("utf-8")
        assert parse_exposition(body).get("extra_family") == 42

    def test_unknown_path_is_404(self):
        with MetricsExporter(port=0, registry=MetricsRegistry()) as exporter:
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(
                    exporter.url.replace("/metrics", "/nope"), timeout=5
                )
            assert excinfo.value.code == 404


# ------------------------------------------------------- registry under fire


class TestRegistryHammer:
    def test_concurrent_feeds_and_scrapes_never_tear(self):
        """Executor threads hammer one histogram and one counter while a
        scrape loop renders; every observed histogram state must be
        internally consistent (bucket sum == count) and the final totals
        exact — the registry's documented thread-safety contract."""
        registry = MetricsRegistry()
        per_thread, n_threads = 2_000, 4
        start = threading.Barrier(n_threads + 1)
        errors = []

        def feeder(seed):
            histogram = registry.histogram("lat", tenant=f"t{seed % 2}")
            counter = registry.counter("hits")
            start.wait()
            for i in range(per_thread):
                histogram.observe((i % 7) * 1e-4)
                counter.inc()

        threads = [
            threading.Thread(target=feeder, args=(seed,))
            for seed in range(n_threads)
        ]
        for thread in threads:
            thread.start()
        start.wait()
        for _ in range(50):  # scrape while they feed
            for key, metric in registry.items():
                if metric.kind == "histogram":
                    _, buckets, count, _ = metric.export_state()
                    if sum(buckets) != count:
                        errors.append((key, sum(buckets), count))
            render_exposition(registry)  # must not raise mid-churn
        for thread in threads:
            thread.join()
        assert not errors, f"torn histogram reads: {errors[:3]}"
        assert registry.counter("hits").snapshot() == per_thread * n_threads
        total = sum(
            metric.snapshot()["count"]
            for _, metric in registry.items()
            if metric.kind == "histogram"
        )
        assert total == per_thread * n_threads

    def test_reset_bumps_generation_for_handle_caches(self):
        """Hot call sites cache instrument handles keyed by the registry
        generation; reset() must invalidate them so a stale pre-reset
        handle (invisible to scrapes) is never fed again."""
        registry = MetricsRegistry()
        generation = registry.generation
        stale = registry.counter("c")
        registry.reset()
        assert registry.generation == generation + 1
        fresh = registry.counter("c")
        assert fresh is not stale
        stale.inc()  # feeding the stale handle must not reach the registry
        assert fresh.snapshot() == 0


# ------------------------------------------------------- lock wait histograms


class TestLockWaitMetrics:
    def test_uncontended_acquisitions_skip_the_wait_histogram(self):
        obs_metrics.enable()
        lock = PieceSnapshotLock(name="t/idx")
        with lock.read():
            pass
        with lock.write():
            pass
        keys = obs.REGISTRY.names()
        assert not any("read_wait" in key or "write_wait" in key for key in keys)
        # Holds are always recorded — they are the snapshot-duration story.
        assert "lock.read_hold_seconds{index=t/idx}" in keys
        assert "lock.write_hold_seconds{index=t/idx}" in keys

    def test_contended_wait_lands_in_the_histogram(self):
        obs_metrics.enable()
        lock = PieceSnapshotLock(name="t/idx")
        lock.acquire_read()
        acquired = threading.Event()

        def writer():
            lock.acquire_write()
            acquired.set()
            lock.release_write()

        thread = threading.Thread(target=writer)
        thread.start()
        import time as _time

        _time.sleep(0.05)  # let the writer block behind the reader
        lock.release_read()
        assert acquired.wait(timeout=5)
        thread.join(timeout=5)
        histogram = obs.REGISTRY.histogram(
            "lock.write_wait_seconds", index="t/idx"
        )
        assert histogram.count == 1
        assert histogram.maximum >= 0.04
        assert lock.drain_max_wait() >= 0.04

    def test_anonymous_locks_never_touch_the_registry(self):
        obs_metrics.enable()
        lock = PieceSnapshotLock()  # no name
        with lock.read():
            pass
        with lock.write():
            pass
        assert len(obs.REGISTRY) == 0


# ------------------------------------------------------------------ SLO plane


class FakeClock:
    def __init__(self, now=1000.0):
        self.now = now

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


class TestSLOEngine:
    def test_objective_is_floored_and_widens(self):
        engine = SLOEngine(SLOConfig(floor_seconds=0.05))
        assert engine.set_objective("t", 0.001) == 0.05  # floor wins
        assert engine.set_objective("t", 0.2) == 0.2  # loosest wins
        assert engine.set_objective("t", 0.1) == 0.2  # never tightens
        assert engine.objective("t") == 0.2
        assert engine.objective("unknown") is None

    def test_compliance_and_burn_rate(self):
        clock = FakeClock()
        engine = SLOEngine(
            SLOConfig(target_ratio=0.9, window_seconds=30.0), clock=clock
        )
        engine.set_objective("t", 0.1)
        for _ in range(8):
            assert engine.observe("t", 0.05) is True
        for _ in range(2):
            assert engine.observe("t", 0.5) is False
        state = engine.snapshot()["t"]
        assert state["total"] == 10 and state["good"] == 8
        assert state["compliance"] == pytest.approx(0.8)
        # Window miss rate 20% against a 10% error budget: burning 2x.
        assert state["burn_rate"] == pytest.approx(2.0)
        assert state["meeting_target"] is False
        # The misses age out of the window; lifetime compliance stays.
        clock.advance(31.0)
        state = engine.snapshot()["t"]
        assert state["window_total"] == 0
        assert state["burn_rate"] == 0.0
        assert state["compliance"] == pytest.approx(0.8)

    def test_exposition_renders_slo_families(self):
        engine = SLOEngine(SLOConfig(floor_seconds=0.05))
        engine.set_objective("t", 0.01)
        engine.observe("t", 0.01)
        engine.record_event("critical", "refinement_stalled", idle_seconds=12)
        scrape = parse_exposition(engine.exposition())
        assert scrape.get("repro_slo_objective_seconds", tenant="t") == 0.05
        assert scrape.get("repro_slo_requests_total", tenant="t") == 1
        assert scrape.get("repro_slo_compliance_ratio", tenant="t") == 1.0
        assert (
            scrape.get("repro_slo_watchdog_events_total", severity="critical")
            == 1
        )

    def test_events_are_bounded_and_counted(self):
        engine = SLOEngine(SLOConfig(max_events=4))
        for i in range(10):
            engine.record_event("warning", "slo_burn", n=i)
        assert len(engine.events()) == 4  # deque bound
        assert engine.event_counts()["warning"] == 10  # counts keep history
        assert engine.events()[-1]["details"]["n"] == 9


class TestWatchdog:
    def _watchdog(self, probes, clock, **config):
        engine = SLOEngine(
            SLOConfig(
                stall_seconds=10.0,
                starvation_seconds=10.0,
                lock_wait_critical_seconds=1.0,
                **config,
            ),
            clock=clock,
        )
        state = {"i": 0}

        def probe():
            i = min(state["i"], len(probes) - 1)
            state["i"] += 1
            return probes[i]

        return engine, Watchdog(engine, probe, clock=clock)

    def test_stalled_refinement_fires_once_and_rearms(self):
        clock = FakeClock()
        idle = {"slices_run": 5, "unconverged": 2, "allocations": {}, "max_lock_wait": 0.0}
        moved = {"slices_run": 6, "unconverged": 2, "allocations": {}, "max_lock_wait": 0.0}
        engine, watchdog = self._watchdog([idle, idle, idle, moved, idle, idle], clock)
        watchdog.check()  # baseline probe
        clock.advance(11.0)
        watchdog.check()  # 11s with no new slice and work owed: critical
        assert [e["kind"] for e in engine.events("critical")] == [
            "refinement_stalled"
        ]
        clock.advance(11.0)
        watchdog.check()  # still stalled: edge-triggered, no second event
        assert len(engine.events("critical")) == 1
        watchdog.check()  # slices moved: episode clears
        clock.advance(11.0)
        watchdog.check()
        clock.advance(11.0)
        watchdog.check()  # a fresh stall is a fresh event
        assert len(engine.events("critical")) == 2

    def test_starved_tenant_detected_while_scheduler_advances(self):
        clock = FakeClock()
        probes = [
            {"slices_run": i, "unconverged": 2,
             "allocations": {"fed": float(i), "starved": 1.0},
             "max_lock_wait": 0.0}
            for i in range(4)
        ]
        engine, watchdog = self._watchdog(probes, clock)
        watchdog.check()
        clock.advance(6.0)
        watchdog.check()
        assert engine.events("critical") == []  # not starved yet
        clock.advance(6.0)
        watchdog.check()  # 12s of frozen ledger while others advance
        kinds = [e["kind"] for e in engine.events("critical")]
        assert kinds == ["tenant_starved"]
        assert engine.events("critical")[0]["details"]["tenant"] == "starved"

    def test_runaway_lock_wait_is_critical(self):
        clock = FakeClock()
        probes = [
            {"slices_run": 1, "unconverged": 0, "allocations": {},
             "max_lock_wait": 2.5},
        ]
        engine, watchdog = self._watchdog(probes, clock)
        watchdog.check()
        (event,) = engine.events("critical")
        assert event["kind"] == "lock_wait_runaway"
        assert event["details"]["max_wait_seconds"] == 2.5

    def test_burn_spike_is_a_warning_not_a_critical(self):
        clock = FakeClock()
        probes = [{"slices_run": 0, "unconverged": 0, "allocations": {},
                   "max_lock_wait": 0.0}]
        engine, watchdog = self._watchdog(probes, clock, target_ratio=0.9)
        engine.set_objective("t", 0.1)
        for _ in range(10):
            engine.observe("t", 5.0)  # every request misses: burn 10x
        watchdog.check()
        assert engine.events("critical") == []
        (event,) = engine.events("warning")
        assert event["kind"] == "slo_burn_fast"
        assert event["details"]["tenant"] == "t"

    def test_probe_failure_is_survived_as_warning(self):
        clock = FakeClock()
        engine = SLOEngine(SLOConfig(), clock=clock)

        def bad_probe():
            raise RuntimeError("boom")

        watchdog = Watchdog(engine, bad_probe, clock=clock)
        with pytest.raises(RuntimeError):
            watchdog.check()  # check() itself propagates (tests want that)
        # ...but the thread loop wraps it: simulate one loop iteration.
        try:
            watchdog.check()
        except Exception as error:
            engine.record_event(
                "warning", "watchdog_probe_failed", error=repr(error)
            )
        assert engine.events("warning")[0]["kind"] == "watchdog_probe_failed"


# ----------------------------------------------- end-to-end request tracing


def _request_roots(records, request_id):
    return [
        record
        for record in spans(records, "serve.query")
        if record.get("attrs", {}).get("trace") == request_id
    ]


class TestTracePropagation:
    @pytest.mark.parametrize("mode", ["adaptive", "snapshot"])
    def test_socket_request_resolves_to_one_span_tree(self, mode):
        """A client-chosen request id sent over TCP must come back as
        exactly one ``serve.query`` root whose children cover the
        request lifecycle: queue -> admission -> lock -> scan."""
        sink = ListSink()
        obs.enable(sink=sink, metrics=True)
        spec = TableSpec("wire", "uniform", 4_000, 2, seed=3)
        with ServerThread(IndexServer(size_threshold=256)) as handle:
            with ServeClient(handle.host, handle.port) as client:
                client.register_spec(spec)
                session = client.open_session("tenant-x")
                bounds = {"c0": (10.0, 55.0), "c1": (10.0, 55.0)}
                client.query(session, "wire", bounds, mode=mode)  # warm/create
                client.query(
                    session, "wire", bounds, mode=mode, trace=f"req-{mode}"
                )
                client.shutdown()
        obs.disable()
        roots = _request_roots(sink.records, f"req-{mode}")
        assert len(roots) == 1, "one request id -> one serve.query root"
        root = roots[0]
        assert root["attrs"]["mode"] == mode
        assert root["attrs"]["tenant"] == "tenant-x"
        children = {
            record["name"]
            for record in spans(sink.records)
            if record.get("parent") == root["id"]
        }
        assert {"serve.queue", "serve.admission", "serve.lock"} <= children
        scans = [
            record
            for record in spans(sink.records, "serve.scan")
            if record.get("parent") == root["id"]
        ]
        assert len(scans) == 1
        lock_sides = {
            record["attrs"]["side"]
            for record in spans(sink.records, "serve.lock")
            if record.get("parent") == root["id"]
        }
        want_side = "read" if mode == "snapshot" else "write"
        assert lock_sides == {want_side}

    def test_refinement_slice_is_funded_by_the_poking_query(self):
        """The scheduler's next slice after a query must parent under
        that query's root span — the query->refinement trace link."""
        sink = ListSink()
        obs.enable(sink=sink, metrics=True)
        server = IndexServer(technique="greedy", size_threshold=256)
        try:
            spec = TableSpec("t", "uniform", 8_000, 2, seed=7)
            server.register_table("t", spec=spec)
            session = server.open_session("a")
            bounds = {"c0": (10.0, 30.0), "c1": (10.0, 30.0)}
            server.execute_query(session, "t", bounds, trace="funder")
            from repro.core.progressive_kdtree import CREATION

            entry = next(iter(server._sessions[session].indexes.values()))
            while entry.index.phase == CREATION:
                server.execute_query(session, "t", bounds, trace="funder-2")
            import time as _time

            deadline = _time.monotonic() + 30
            while (
                not spans(sink.records, "scheduler.slice")
                and _time.monotonic() < deadline
            ):
                server.scheduler.poke()
                _time.sleep(0.01)
        finally:
            server.close()
            obs.disable()
        slices = spans(sink.records, "scheduler.slice")
        assert slices, "scheduler never ran a traced slice"
        root_ids = {
            record["id"] for record in spans(sink.records, "serve.query")
        }
        funded = [s for s in slices if s.get("parent") in root_ids]
        assert funded, "no refinement slice parented under a query root"

    def test_metrics_op_serves_exposition_over_the_socket(self):
        obs_metrics.enable()
        spec = TableSpec("wire", "uniform", 2_000, 2, seed=3)
        with ServerThread(IndexServer(size_threshold=256)) as handle:
            with ServeClient(handle.host, handle.port) as client:
                client.register_spec(spec)
                session = client.open_session("t0")
                client.query(
                    session, "wire", {"c0": (10.0, 55.0), "c1": (10.0, 55.0)}
                )
                text = client.metrics()
                client.shutdown()
        scrape = parse_exposition(text)
        assert scrape.get("repro_serve_queries", tenant="t0", mode="adaptive") >= 1
        assert scrape.get("repro_slo_requests_total", tenant="t0") >= 1
        assert "repro_serve_query_seconds_bucket" in scrape.samples


# ------------------------------------------------------------- top dashboard


def _scrape_text(queries, seconds_count, compliance=1.0, burn=0.0):
    return "\n".join(
        [
            "# TYPE repro_serve_queries counter",
            f'repro_serve_queries{{mode="adaptive",tenant="t0"}} {queries}',
            "# TYPE repro_serve_query_seconds histogram",
            f'repro_serve_query_seconds_bucket{{le="0.001",mode="adaptive",tenant="t0"}} {seconds_count}',
            f'repro_serve_query_seconds_bucket{{le="+Inf",mode="adaptive",tenant="t0"}} {seconds_count}',
            f'repro_serve_query_seconds_sum{{mode="adaptive",tenant="t0"}} 0.01',
            f'repro_serve_query_seconds_count{{mode="adaptive",tenant="t0"}} {seconds_count}',
            "# TYPE repro_slo_objective_seconds gauge",
            'repro_slo_objective_seconds{tenant="t0"} 0.05',
            "# TYPE repro_slo_compliance_ratio gauge",
            f'repro_slo_compliance_ratio{{tenant="t0"}} {compliance}',
            "# TYPE repro_slo_burn_rate gauge",
            f'repro_slo_burn_rate{{tenant="t0"}} {burn}',
            "# TYPE repro_serve_rows_to_converge gauge",
            'repro_serve_rows_to_converge{index="t0/t/c0",tenant="t0"} 500',
            "# TYPE repro_serve_open_pieces gauge",
            'repro_serve_open_pieces{index="t0/t/c0",tenant="t0"} 4',
            "# TYPE repro_scheduler_slices counter",
            'repro_scheduler_slices{tenant="t0"} 12',
            "# TYPE repro_scheduler_rows counter",
            'repro_scheduler_rows{tenant="t0"} 24000',
            "# TYPE repro_scheduler_model_seconds counter",
            'repro_scheduler_model_seconds{tenant="t0"} 0.1234',
            "# TYPE repro_slo_watchdog_events_total counter",
            'repro_slo_watchdog_events_total{severity="warning"} 1',
            'repro_slo_watchdog_events_total{severity="critical"} 0',
        ]
    )


class TestTopDashboard:
    def test_frame_shows_tenants_convergence_ledger_watchdog(self):
        before = parse_exposition(_scrape_text(queries=100, seconds_count=100))
        after = parse_exposition(_scrape_text(queries=150, seconds_count=150))
        peaks = {}
        frame = render_dashboard(
            after, before, elapsed=5.0, color=False, peak_rows=peaks
        )
        assert "t0" in frame
        assert "10.0" in frame  # QPS: (150-100)/5s
        assert "50.0ms" in frame  # the SLO objective column
        assert "100.00%" in frame
        assert "OK" in frame
        assert "t0/t/c0" in frame and "500" in frame  # convergence row
        assert "REFINE-LEDGER" in frame and "24000" in frame
        assert "0 critical / 1 warning" in frame
        assert "\x1b[" not in frame  # color=False means no ANSI codes

    def test_burning_tenant_is_flagged(self):
        scrape = parse_exposition(
            _scrape_text(queries=10, seconds_count=10, compliance=0.5, burn=50.0)
        )
        frame = render_dashboard(scrape, color=False)
        assert "MISS" in frame

    def test_progress_bar_tracks_peak_rows(self):
        peaks = {}
        first = parse_exposition(_scrape_text(queries=1, seconds_count=1))
        render_dashboard(first, color=False, peak_rows=peaks)
        assert peaks["t0/t/c0"] == 500.0
        better = parse_exposition(
            _scrape_text(queries=2, seconds_count=2).replace(
                'rows_to_converge{index="t0/t/c0",tenant="t0"} 500',
                'rows_to_converge{index="t0/t/c0",tenant="t0"} 100',
            )
        )
        frame = render_dashboard(better, color=False, peak_rows=peaks)
        assert peaks["t0/t/c0"] == 500.0  # the denominator is sticky
        assert "80.0%" in frame

    def test_empty_scrape_renders_placeholder(self):
        frame = render_dashboard(parse_exposition(""), color=False)
        assert "(no traffic yet)" in frame
        assert frame.endswith("\n")
