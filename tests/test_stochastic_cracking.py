"""Stochastic cracking (DDC/DDR) on the 1-D substrate."""

import numpy as np
import pytest

from repro import InvalidParameterError
from repro.baselines.cracking1d import CrackerColumn
from repro.baselines.stochastic_cracking import StochasticCrackerColumn
from repro.core.metrics import QueryStats


@pytest.fixture
def keys():
    rng = np.random.default_rng(0)
    return rng.random(8_000) * 1_000.0


def sequential_bounds(n, span=1_000.0):
    step = span / n
    return [(i * step, (i + 1) * step) for i in range(n)]


class TestCorrectness:
    @pytest.mark.parametrize("variant", ["ddc", "ddr"])
    def test_ranges_match_brute_force(self, keys, variant):
        cracker = StochasticCrackerColumn(keys, variant=variant, size_threshold=64)
        rng = np.random.default_rng(1)
        for _ in range(25):
            low = float(rng.random() * 900)
            high = low + float(rng.random() * 80)
            got = np.sort(cracker.range_rowids(low, high))
            want = np.flatnonzero((keys > low) & (keys <= high))
            assert np.array_equal(got, want)
        cracker.validate()

    @pytest.mark.parametrize("variant", ["ddc", "ddr"])
    def test_sequential_workload_correct(self, keys, variant):
        cracker = StochasticCrackerColumn(keys, variant=variant, size_threshold=64)
        for low, high in sequential_bounds(50):
            got = np.sort(cracker.range_rowids(low, high))
            want = np.flatnonzero((keys > low) & (keys <= high))
            assert np.array_equal(got, want)
        cracker.validate()

    def test_constant_column(self):
        cracker = StochasticCrackerColumn(np.full(500, 7.0), size_threshold=16)
        assert cracker.range_rowids(6.0, 8.0).size == 500
        assert cracker.range_rowids(7.0, 8.0).size == 0


class TestRobustness:
    def test_bounds_pieces_under_sequential_sweep(self, keys):
        """The point of stochastic cracking: plain cracking leaves one
        giant unrefined piece ahead of a sequential sweep; DDC bounds the
        piece any query bound lands in."""
        plain = CrackerColumn(keys)
        ddc = StochasticCrackerColumn(keys, variant="ddc", size_threshold=64)
        plain_costs = []
        ddc_costs = []
        for low, high in sequential_bounds(40):
            stats_plain = QueryStats()
            plain.range_rowids(low, high, stats_plain)
            plain_costs.append(stats_plain.copied)
            stats_ddc = QueryStats()
            ddc.range_rowids(low, high, stats_ddc)
            ddc_costs.append(stats_ddc.copied)
        # Plain cracking re-partitions the huge right piece every query
        # (cost ~N each time); DDC's typical per-query cost collapses —
        # only occasional centre-split cascades still touch a big piece.
        assert np.median(ddc_costs[5:]) < np.median(plain_costs[5:]) / 4
        assert sum(ddc_costs) < sum(plain_costs)

    def test_ddc_pieces_stay_bounded(self, keys):
        ddc = StochasticCrackerColumn(keys, variant="ddc", size_threshold=64)
        for low, high in sequential_bounds(30):
            ddc.range_rowids(low, high)
            start, end = ddc._piece_for(low + 1e-9)
            assert end - start <= 64 * 2  # the touched region is refined

    def test_ddr_deterministic_by_seed(self, keys):
        first = StochasticCrackerColumn(keys, variant="ddr", seed=5)
        second = StochasticCrackerColumn(keys, variant="ddr", seed=5)
        first.range_rowids(100.0, 200.0)
        second.range_rowids(100.0, 200.0)
        assert first.n_cracks == second.n_cracks

    def test_more_cracks_than_plain(self, keys):
        plain = CrackerColumn(keys)
        ddc = StochasticCrackerColumn(keys, variant="ddc", size_threshold=64)
        plain.range_rowids(400.0, 500.0)
        ddc.range_rowids(400.0, 500.0)
        assert ddc.n_cracks > plain.n_cracks  # the auxiliary pivots


class TestValidation:
    def test_bad_variant(self, keys):
        with pytest.raises(InvalidParameterError):
            StochasticCrackerColumn(keys, variant="xyz")

    def test_bad_threshold(self, keys):
        with pytest.raises(InvalidParameterError):
            StochasticCrackerColumn(keys, size_threshold=0)
