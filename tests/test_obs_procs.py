"""Cross-process telemetry: the proc tier visible to tracing/metrics.

The load-bearing claims of the bridge (:mod:`repro.obs.procbridge`):

* span ids are namespaced by pid, so records from any number of worker
  processes merge into one trace without collisions, and the offline
  aggregator tolerates (and attributes across) multi-process parent
  chains;
* a query executed on the proc tier produces the same phase-span
  taxonomy as the serial run, with worker-executed spans re-parented
  under the funding query's spans;
* worker metric deltas folded into the parent registry equal the serial
  counter totals — no metered work goes missing in either direction;
* the new surfaces render: proc-pool health and per-shard telemetry in
  ``obs top`` / ``obs procs`` from a synthetic two-process scrape, and
  the SLO watchdog's ``worker_stalled`` / ``shm_leak`` criticals fire
  edge-triggered from injected probes.

Pool lifecycle mirrors ``test_procs.py``: workers stay warm across
tests, the module teardown joins them and asserts no shm segment leaked.
"""

from __future__ import annotations

import gc
import os

import numpy as np
import pytest

import repro.obs as obs
from repro.core.metrics import QueryStats
from repro.core.query import RangeQuery
from repro.fuzz import BACKENDS, FuzzCase, build_workload, make_backend
from repro.obs import metrics as obs_metrics
from repro.obs.aggregate import render_report, summarize
from repro.obs.export import parse_exposition
from repro.obs.metrics import Histogram
from repro.obs.procbridge import absorb, install_worker_collector, request
from repro.obs.procs import render_procs
from repro.obs.sink import ListSink
from repro.obs.slo import SLOConfig, SLOEngine, Watchdog
from repro.obs.top import render_dashboard
from repro.obs.trace import ID_PID_SHIFT, Tracer, id_pid
from repro.parallel import config as par_config
from repro.parallel import executor, procpool, shm


@pytest.fixture(autouse=True)
def telemetry_reset():
    """Planes off, registry empty, worker counts/thresholds restored."""
    procs = procpool.get_process_workers()
    workers = par_config.get_workers()
    morsel, floor = par_config.MORSEL_ROWS, par_config.MIN_PARALLEL_ROWS
    obs.disable()
    obs_metrics.REGISTRY.reset()
    yield
    obs.disable()
    obs_metrics.REGISTRY.reset()
    procpool.set_process_workers(procs)
    par_config.set_workers(workers)
    par_config.MORSEL_ROWS = morsel
    par_config.MIN_PARALLEL_ROWS = floor


@pytest.fixture(scope="module", autouse=True)
def pool_lifecycle():
    yield
    procpool.set_process_workers(1)
    procpool.shutdown_procs()
    gc.collect()
    assert shm.live_segments() == []


def lower_thresholds():
    par_config.MORSEL_ROWS = 256
    par_config.MIN_PARALLEL_ROWS = 256


# ------------------------------------------------------- span-id namespace

class TestSpanIdNamespace:
    def test_ids_carry_this_process_pid(self):
        tracer = Tracer(ListSink())
        with tracer.span("a"):
            pass
        tracer.record_span("b", start=0.0, duration=0.1)
        spans = [r for r in tracer.sink.records if r.get("type") == "span"]
        assert len(spans) == 2
        for record in spans:
            assert id_pid(record["id"]) == os.getpid()
        # Both allocation sites draw from one monotonic counter.
        assert spans[0]["id"] != spans[1]["id"]

    def test_id_pid_inverts_the_shift(self):
        assert id_pid((4242 << ID_PID_SHIFT) | 17) == 4242

    def test_two_processes_cannot_collide(self):
        # Simulate the second process by planting its pid prefix the way
        # Tracer.__init__ does.
        ours = Tracer(ListSink())
        theirs = Tracer(ListSink())
        theirs._next_id = 99999 << ID_PID_SHIFT
        with ours.span("a"):
            pass
        with theirs.span("a"):
            pass
        mine = ours.sink.records[-1]["id"]
        other = theirs.sink.records[-1]["id"]
        assert mine != other
        assert id_pid(mine) != id_pid(other)

    def test_ingest_appends_foreign_records(self):
        tracer = Tracer(ListSink())
        foreign = [
            {"type": "span", "name": "proc.task", "id": 7, "parent": None,
             "ts": 0.0, "dur": 0.1, "attrs": {}, "counters": {}},
            {"type": "span", "name": "kernel", "id": 8, "parent": 7,
             "ts": 0.0, "dur": 0.05, "attrs": {}, "counters": {}},
        ]
        tracer.ingest(foreign)
        assert foreign[0] in tracer.sink.records
        assert foreign[1] in tracer.sink.records

    def test_worker_collector_is_persistent_and_idempotent(self):
        first = install_worker_collector()
        assert install_worker_collector() is first


# ------------------------------------------------------- histogram merging

class TestHistogramMerge:
    def test_merge_snapshot_equals_direct_observation(self):
        source = Histogram("h")
        for value in (1e-5, 3e-4, 0.002, 0.002, 5.0, 99.0):
            source.observe(value)
        target = Histogram("h")
        target.observe(0.5)
        target.merge_snapshot(source.snapshot())

        direct = Histogram("h")
        for value in (1e-5, 3e-4, 0.002, 0.002, 5.0, 99.0, 0.5):
            direct.observe(value)
        assert target.snapshot() == direct.snapshot()

    def test_empty_snapshot_is_a_noop(self):
        target = Histogram("h")
        target.observe(1.0)
        before = target.snapshot()
        target.merge_snapshot({"count": 0, "sum": 0.0, "buckets": {}})
        target.merge_snapshot(None)
        assert target.snapshot() == before


# ------------------------------------------- synthetic multi-process trace

def _span(span_id, name, parent=None, ts=0.0, dur=0.01, **attrs):
    return {
        "type": "span", "name": name, "id": span_id, "parent": parent,
        "ts": ts, "dur": dur, "attrs": attrs, "counters": {},
    }


class TestMultiProcessAggregation:
    """``summarize`` over a trace whose records span two pids."""

    def _records(self):
        parent, worker = 100 << ID_PID_SHIFT, 200 << ID_PID_SHIFT
        query = _span(parent + 1, "query", dur=1.0,
                      index="GPKD", query_number=0)
        return [
            {"type": "meta", "meta": {"pid": 100}},
            query,
            _span(parent + 2, "phase", parent=parent + 1, dur=0.25,
                  phase="scan"),
            # Worker roots re-parented under the query's scan phase ...
            _span(worker + 1, "proc.task", parent=parent + 2, dur=0.2,
                  op="proc_scan", pid=200),
            _span(worker + 5, "proc.task", parent=parent + 2, dur=0.1,
                  op="proc_scan", pid=200),
            # ... with worker-internal parent links kept as-is.
            _span(worker + 2, "kernel", parent=worker + 1, dur=0.15,
                  backend="numpy", op="range_scan", rows=500),
            _span(worker + 3, "phase", parent=worker + 1, dur=0.15,
                  phase="scan"),
            # A second worker process, and a dangling parent (its owner
            # was never shipped): both must be tolerated.
            _span((300 << ID_PID_SHIFT) + 1, "proc.task",
                  parent=parent + 1, dur=0.05, op="proc_refine", pid=300),
            _span((400 << ID_PID_SHIFT) + 9, "kernel",
                  parent=(400 << ID_PID_SHIFT) + 1, dur=0.01,
                  backend="numpy", op="range_scan", rows=1),
        ]

    def test_cross_process_chains_attribute_to_the_query(self):
        summary = summarize(self._records())
        assert len(summary.queries) == 1
        query = summary.queries[0]
        # The worker's phase span reached the query through a chain that
        # crosses two pid namespaces: worker phase -> proc.task ->
        # parent phase -> query.
        assert query.phases["scan"] == pytest.approx(0.25 + 0.15)
        # The dangling-parent kernel span still counts globally.
        assert summary.kernels["numpy/range_scan"]["count"] == 2

    def test_proc_task_rollup(self):
        summary = summarize(self._records())
        assert summary.workers["proc_scan"]["tasks"] == 2
        assert summary.workers["proc_scan"]["seconds"] == pytest.approx(0.3)
        assert summary.workers["proc_scan"]["pids"] == {200}
        assert summary.workers["proc_refine"]["pids"] == {300}

    def test_report_renders_worker_section(self):
        text = render_report(summarize(self._records()))
        assert "Worker tasks (proc tier)" in text
        assert "proc_scan" in text


# ------------------------------------------------------- absorb round trip

class TestAbsorb:
    def test_rebases_reparents_and_folds(self):
        tracer = obs.enable(sink=ListSink(), metrics=True)
        try:
            telemetry = request()
            assert telemetry is not None and telemetry["trace"]
            worker = 555 << ID_PID_SHIFT
            payload = {
                "pid": 555,
                "op": "scan",
                "records": [
                    _span(worker + 1, "proc.task", parent=None, ts=1.0,
                          dur=0.2, op="scan", pid=555),
                    _span(worker + 2, "kernel", parent=worker + 1, ts=1.05,
                          dur=0.1, backend="numpy", op="range_scan",
                          rows=64),
                ],
                "metrics": [
                    # Keys travel in the registry's own rendering.
                    ("kernel.range_scan.rows{backend=numpy}", "counter", 64),
                    ("parallel.shm_segments", "gauge", 2),
                ],
                "submit_unix": telemetry["submit_unix"],
                "submit_trace": telemetry["submit_trace"],
                "worker_start_unix": telemetry["submit_unix"] + 0.5,
                "worker_end_unix": telemetry["submit_unix"] + 0.8,
                "task_wall": 0.3,
                "t0": 1.0,
            }
            absorb(payload, parent_id=12345, op="proc_scan")

            spans = {
                r["id"]: r
                for r in tracer.sink.records
                if r.get("type") == "span"
            }
            root, inner = spans[worker + 1], spans[worker + 2]
            # Root re-parented under the funding span; internal links kept.
            assert root["parent"] == 12345
            assert inner["parent"] == worker + 1
            # Re-based: worker ts 1.0 (== t0) maps to submit_trace + the
            # unix-clock gap between submit and worker start (0.5s).
            assert root["ts"] == pytest.approx(
                telemetry["submit_trace"] + 0.5, abs=1e-6
            )
            assert inner["ts"] - root["ts"] == pytest.approx(0.05, abs=1e-6)

            registry = obs_metrics.REGISTRY
            assert registry.counter(
                "kernel.range_scan.rows", backend="numpy"
            ).snapshot() == 64
            assert registry.gauge("parallel.shm_segments").snapshot() == 2
            assert registry.counter(
                "parallel.proc_tasks_done", op="proc_scan"
            ).snapshot() == 1
            dispatch = registry.histogram(
                "parallel.proc_dispatch_seconds", op="proc_scan"
            ).snapshot()
            assert dispatch["count"] == 1
            assert dispatch["sum"] == pytest.approx(0.5, abs=1e-3)
            task = registry.histogram(
                "parallel.proc_task_seconds", op="proc_scan"
            ).snapshot()
            assert task["sum"] == pytest.approx(0.3)
        finally:
            obs.disable()

    def test_none_payload_and_disabled_planes_are_noops(self):
        absorb(None, parent_id=1)  # no crash, nothing live
        assert request() is None  # both planes off -> ship nothing


# ------------------------------------------- proc tier vs serial: taxonomy

def _traced_run(backend, procs):
    """Run one fuzz workload under tracing; returns (records, registry).

    The table is shared and thresholds lowered before the index is
    built, so with ``procs > 1`` the query path genuinely dispatches to
    pool workers (same discipline as ``test_procs.run_case_procs``).
    """
    par_config.set_workers(1)
    procpool.set_process_workers(procs)
    if procs > 1:
        lower_thresholds()
    case = FuzzCase(
        seed=2, kind="duplicate", n_rows=1200, n_dims=2,
        n_queries=8, size_threshold=64, delta=0.25,
    )
    table, queries = build_workload(case)
    # A full-range probe guarantees every backend scans all rows at
    # least once — above the lowered fan-out floor, so the proc run
    # genuinely dispatches regardless of how selective the mix is.
    queries = list(queries) + [RangeQuery([-np.inf] * 2, [np.inf] * 2)]
    table.share()
    index = make_backend(backend, table, case)
    registry = obs_metrics.REGISTRY
    registry.reset()
    tracer = obs.enable(sink=ListSink(), metrics=True)
    try:
        answers = []
        for query in queries:
            result = index.query(query)
            answers.append(tuple(np.sort(result.row_ids).tolist()))
        records = list(tracer.sink.records)
        counters = {
            key: metric.snapshot()
            for key, metric in registry.items()
            if metric.kind == "counter"
            # parallel.* counters are fan-out bookkeeping (fanouts,
            # proc_tasks_done) that only exists on the parallel run.
            and not key.startswith("parallel.")
        }
    finally:
        obs.disable()
        registry.reset()
    del index
    gc.collect()  # free the shared table's segment before the next run
    return answers, records, counters


def _phase_taxonomy(records):
    """Per-query sorted (phase, count) signature via the parent walk."""
    summary = summarize(records)
    return [
        sorted(query.phases) for query in summary.queries
    ], summary


# The baselines (quasii, sfc) never route through the parallel executor;
# under REPRO_PROCS they run serially, so they exercise the pid-namespace
# and exact-counter claims but produce no worker spans.
PROC_TIER_BACKENDS = frozenset(BACKENDS) - {"quasii", "sfc"}


@pytest.mark.parametrize("backend", sorted(BACKENDS))
def test_proc_trace_taxonomy_matches_serial(backend):
    serial_answers, serial_records, serial_counters = _traced_run(backend, 1)
    proc_answers, proc_records, proc_counters = _traced_run(backend, 2)
    assert serial_answers == proc_answers, "answers diverged under tracing"

    serial_phases, _ = _phase_taxonomy(serial_records)
    proc_phases, proc_summary = _phase_taxonomy(proc_records)
    # The acceptance claim: bit-identical phase taxonomy per query.
    assert serial_phases == proc_phases

    # Re-parenting: every span's parent chain must terminate inside the
    # trace (no dangling worker roots), and worker spans must be
    # pid-foreign to the parent process.
    by_id = {
        r["id"]: r for r in proc_records if r.get("type") == "span"
    }
    worker_spans = [
        r for r in by_id.values() if r.get("name") == "proc.task"
    ]
    for record in by_id.values():
        parent = record.get("parent")
        assert parent is None or parent in by_id, (
            f"dangling parent {parent} on {record['name']}"
        )
    if backend in PROC_TIER_BACKENDS:
        assert worker_spans, "proc run produced no worker spans"
    for record in worker_spans:
        assert id_pid(record["id"]) != os.getpid()
        assert id_pid(record["id"]) == record["attrs"]["pid"]
        assert id_pid(record["parent"]) == os.getpid()

    # Worker metric deltas folded into the parent registry equal the
    # serial counter totals (kernel rows, index counters — everything).
    # Progressive backends schedule several pieces per round when fanning
    # out, shifting refinement charges between queries (same caveat as
    # TestBitIdentity in test_procs.py) — for those, only the scan-row
    # totals are comparable.
    if backend in ("pkd", "gpkd"):
        for key in list(serial_counters):
            if key.startswith("kernel.") and key in proc_counters:
                assert proc_counters[key] == serial_counters[key], key
    else:
        assert proc_counters == serial_counters


def test_proc_metric_deltas_equal_serial_scan_totals():
    """The focused counter claim on a bare shm fan-out."""
    rng = np.random.default_rng(7)
    n = 4_000
    block = shm.share_arrays([rng.random(n) for _ in range(2)])
    try:
        query = RangeQuery([0.2, 0.1], [0.8, 0.9])
        registry = obs_metrics.REGISTRY

        par_config.set_workers(1)
        procpool.set_process_workers(1)
        obs_metrics.enable()
        executor.scan_range(block.arrays, 0, n, query, QueryStats())
        obs_metrics.disable()
        serial_rows = sum(
            metric.snapshot()
            for key, metric in registry.items()
            if key.startswith("kernel.range_scan.rows")
        )
        registry.reset()

        lower_thresholds()
        procpool.set_process_workers(2)
        obs_metrics.enable()
        executor.scan_range(block.arrays, 0, n, query, QueryStats())
        obs_metrics.disable()
        proc_rows = sum(
            metric.snapshot()
            for key, metric in registry.items()
            if key.startswith("kernel.range_scan.rows")
        )
        tasks_done = registry.counter(
            "parallel.proc_tasks_done", op="proc_scan"
        ).snapshot()
        assert proc_rows == serial_rows == n
        assert tasks_done == registry.histogram(
            "parallel.proc_task_seconds", op="proc_scan"
        ).snapshot()["count"]
        assert tasks_done > 1  # it really fanned out
    finally:
        block.release()


# --------------------------------------------- dashboards from a scrape

def _two_process_scrape():
    return parse_exposition("\n".join([
        "# TYPE repro_parallel_proc_workers_expected gauge",
        "repro_parallel_proc_workers_expected 2",
        "# TYPE repro_parallel_proc_workers_alive gauge",
        "repro_parallel_proc_workers_alive 2",
        "# TYPE repro_parallel_proc_tasks_inflight gauge",
        "repro_parallel_proc_tasks_inflight 1",
        "# TYPE repro_parallel_proc_tasks_done counter",
        'repro_parallel_proc_tasks_done{op="proc_scan"} 8',
        "# TYPE repro_parallel_proc_dispatch_seconds histogram",
        'repro_parallel_proc_dispatch_seconds_bucket{le="0.001",op="proc_scan"} 6',
        'repro_parallel_proc_dispatch_seconds_bucket{le="+Inf",op="proc_scan"} 8',
        'repro_parallel_proc_dispatch_seconds_sum{op="proc_scan"} 0.02',
        'repro_parallel_proc_dispatch_seconds_count{op="proc_scan"} 8',
        "# TYPE repro_parallel_proc_task_seconds histogram",
        'repro_parallel_proc_task_seconds_bucket{le="0.01",op="proc_scan"} 8',
        'repro_parallel_proc_task_seconds_bucket{le="+Inf",op="proc_scan"} 8',
        'repro_parallel_proc_task_seconds_sum{op="proc_scan"} 0.04',
        'repro_parallel_proc_task_seconds_count{op="proc_scan"} 8',
        "# TYPE repro_parallel_proc_return_seconds histogram",
        'repro_parallel_proc_return_seconds_bucket{le="+Inf",op="proc_scan"} 8',
        'repro_parallel_proc_return_seconds_sum{op="proc_scan"} 0.01',
        'repro_parallel_proc_return_seconds_count{op="proc_scan"} 8',
        "# TYPE repro_parallel_shm_segments gauge",
        "repro_parallel_shm_segments 3",
        "# TYPE repro_parallel_shm_resident_bytes gauge",
        "repro_parallel_shm_resident_bytes 2097152",
        "# TYPE repro_shard_scans counter",
        'repro_shard_scans{index="t",shard="0"} 30',
        'repro_shard_scans{index="t",shard="1"} 10',
        "# TYPE repro_shard_zone_pruned counter",
        'repro_shard_zone_pruned{index="t",shard="1"} 20',
        "# TYPE repro_shard_refine_rows counter",
        'repro_shard_refine_rows{index="t",shard="0"} 4000',
        "# TYPE repro_shard_rows_to_converge gauge",
        'repro_shard_rows_to_converge{index="t",shard="0"} 100',
        'repro_shard_rows_to_converge{index="t",shard="1"} 0',
        "# TYPE repro_shard_converged gauge",
        'repro_shard_converged{index="t",shard="0"} 0',
        'repro_shard_converged{index="t",shard="1"} 1',
    ]))


class TestDashboards:
    def test_top_renders_workers_and_shards_panels(self):
        frame = render_dashboard(_two_process_scrape(), color=False)
        assert "WORKERS" in frame
        assert "2/2 alive" in frame
        assert "PROC-OP" in frame and "proc_scan" in frame
        assert "SHARD" in frame
        assert "t#0" in frame and "t#1" in frame
        assert "converged" in frame
        assert "2.0MiB" in frame  # shm residency in the workers header

    def test_top_without_proc_families_omits_the_panels(self):
        frame = render_dashboard(parse_exposition(""), color=False)
        assert "WORKERS" not in frame
        assert "PROC-OP" not in frame
        assert "t#0" not in frame

    def test_procs_report_renders_all_sections(self):
        text = render_procs(_two_process_scrape())
        assert "process pool" in text
        assert "2/2 alive (healthy)" in text
        assert "proc_scan" in text
        assert "shared memory" in text
        assert "2.0MiB" in text
        assert "sharded indexes" in text
        # Shard 1 pruned 20 of its 30 arrivals; the totals line shows
        # the fleet-wide prune rate 20/(40+20).
        assert "33.3%" in text

    def test_procs_report_on_empty_scrape(self):
        text = render_procs(parse_exposition(""))
        assert "(no process-tier activity in this scrape)" in text
        assert "(no shm residency gauge in this scrape)" in text
        assert "(no per-shard telemetry in this scrape)" in text


# ------------------------------------------------------- watchdog criticals

class FakeClock:
    def __init__(self, now=1000.0):
        self.now = now

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


def _watchdog(probes, clock):
    engine = SLOEngine(
        SLOConfig(
            stall_seconds=10.0,
            starvation_seconds=10.0,
            worker_stall_seconds=10.0,
            shm_leak_seconds=10.0,
        ),
        clock=clock,
    )
    state = {"i": 0}

    def probe():
        i = min(state["i"], len(probes) - 1)
        state["i"] += 1
        return probes[i]

    return engine, Watchdog(engine, probe, clock=clock)


def _probe(**extra):
    base = {
        "slices_run": 1, "unconverged": 0, "allocations": {},
        "max_lock_wait": 0.0,
    }
    base.update(extra)
    return base


class TestWatchdogProcTier:
    def test_dead_worker_fires_immediately(self):
        clock = FakeClock()
        probes = [_probe(proc={
            "expected": 4, "alive": 3, "pending": 0, "done": 10,
        })]
        engine, watchdog = _watchdog(probes, clock)
        watchdog.check()
        (event,) = engine.events("critical")
        assert event["kind"] == "worker_stalled"
        assert event["details"]["alive"] == 3

    def test_frozen_queue_fires_after_grace_and_is_edge_triggered(self):
        clock = FakeClock()
        frozen = _probe(proc={
            "expected": 2, "alive": 2, "pending": 3, "done": 10,
        })
        moving = _probe(proc={
            "expected": 2, "alive": 2, "pending": 3, "done": 11,
        })
        engine, watchdog = _watchdog(
            [frozen, frozen, frozen, moving], clock
        )
        watchdog.check()  # baseline
        clock.advance(6.0)
        watchdog.check()
        assert engine.events("critical") == []  # within grace
        clock.advance(6.0)
        watchdog.check()  # 12s with pending work and a frozen done count
        assert [e["kind"] for e in engine.events("critical")] == [
            "worker_stalled"
        ]
        clock.advance(6.0)
        watchdog.check()  # done moved: episode clears, no second event
        assert len(engine.events("critical")) == 1

    def test_probe_without_proc_key_never_fires(self):
        clock = FakeClock()
        engine, watchdog = _watchdog([_probe()], clock)
        for _ in range(3):
            watchdog.check()
            clock.advance(20.0)
        assert engine.events("critical") == []

    def test_unowned_shm_residency_is_a_leak(self):
        clock = FakeClock()
        leaked = _probe(shm_resident_bytes=4096, shm_expected=False)
        engine, watchdog = _watchdog([leaked], clock)
        watchdog.check()
        assert engine.events("critical") == []  # teardown grace
        clock.advance(11.0)
        watchdog.check()
        (event,) = engine.events("critical")
        assert event["kind"] == "shm_leak"
        assert event["details"]["resident_bytes"] == 4096

    def test_expected_shm_residency_is_not_a_leak(self):
        clock = FakeClock()
        owned = _probe(shm_resident_bytes=4096, shm_expected=True)
        engine, watchdog = _watchdog([owned], clock)
        for _ in range(3):
            watchdog.check()
            clock.advance(11.0)
        assert engine.events("critical") == []


# --------------------------------------------------- shm gauges and health

class TestShardTelemetryLive:
    """Query a ShardedIndex with the full plane on.  Regression guard:
    the per-shard handle cache once reused the base class's
    ``_metric_handles`` slot, so any traced sharded query crashed with
    ``'list' object has no attribute 'get'``."""

    def test_sharded_query_under_tracing_charges_shard_counters(self):
        from repro.core import GreedyProgressiveKDTree, Table
        from repro.core.table_partitioning import ShardedIndex

        rng = np.random.default_rng(5)
        table = Table([rng.random(2_000) for _ in range(2)])
        index = ShardedIndex(
            table,
            lambda t: GreedyProgressiveKDTree(
                t, delta=0.25, size_threshold=64
            ),
            2,
        )
        sink = ListSink()
        obs.enable(sink=sink, metrics=True)
        query = RangeQuery([0.2, 0.2], [0.6, 0.6])
        result = index.query(query)
        assert len(result.row_ids) > 0
        snap = obs_metrics.REGISTRY.snapshot()
        scans = {
            key: value
            for key, value in snap.items()
            if key.startswith(f"shard.scans{{index={index.name},")
        }
        # Row-range shards of uniform data share the value-space zone
        # box, so neither shard prunes: both get charged one scan.
        assert len(scans) == 2
        assert all(value == 1 for value in scans.values())
        assert any(
            record.get("name") == "query"
            for record in sink.records
            if record.get("type") == "span"
        )


class TestShmTelemetry:
    def test_gauges_track_share_and_release(self):
        obs_metrics.enable()
        try:
            registry = obs_metrics.REGISTRY
            block = shm.share_arrays([np.arange(1024, dtype=np.float64)])
            assert shm.resident_bytes() >= 1024 * 8
            snap = shm.telemetry_snapshot()
            assert snap["segments"] >= 1
            assert registry.gauge(
                "parallel.shm_resident_bytes"
            ).snapshot() == snap["resident_bytes"]
            block.release()
            # The leak gate CI promotes to an assert: zero after teardown.
            assert shm.resident_bytes() == 0
            assert registry.gauge("parallel.shm_segments").snapshot() == 0
            assert registry.gauge(
                "parallel.shm_resident_bytes"
            ).snapshot() == 0
        finally:
            obs_metrics.disable()

    def test_health_snapshot_ledger(self):
        base = procpool.health_snapshot()
        procpool.note_submitted(3)
        procpool.note_done(2)
        after = procpool.health_snapshot()
        assert after["pending"] == base["pending"] + 1
        procpool.note_done(1)
        assert procpool.health_snapshot()["pending"] == base["pending"]

    def test_publish_health_feeds_gauges(self):
        obs_metrics.enable()
        try:
            procpool.set_process_workers(2)
            snapshot = procpool.publish_health()
            registry = obs_metrics.REGISTRY
            assert registry.gauge(
                "parallel.proc_workers_expected"
            ).snapshot() == snapshot["expected"] == 2
            assert registry.gauge(
                "parallel.proc_tasks_inflight"
            ).snapshot() == snapshot["pending"]
        finally:
            obs_metrics.disable()
