"""Precise budget and work accounting across the progressive indexes."""

import numpy as np
import pytest

from repro import (
    CostModel,
    GreedyProgressiveKDTree,
    MachineProfile,
    ProgressiveKDTree,
)
from repro.core.progressive_kdtree import CREATION, REFINEMENT
from tests.conftest import make_queries, make_uniform_table


@pytest.fixture
def table():
    return make_uniform_table(4_000, 3, seed=90)


@pytest.fixture
def model(table):
    return CostModel(MachineProfile.deterministic(), table.n_rows, 3)


class TestProgressiveBudget:
    def test_creation_copies_exactly_delta_rows(self, table, model):
        index = ProgressiveKDTree(
            table, delta=0.25, size_threshold=64, cost_model=model
        )
        query = make_queries(table, 1, seed=91)[0]
        stats = index.query(query).stats
        # copied counter = rows * (d + 1).
        assert stats.copied == 1_000 * 4

    def test_creation_budget_rows_match_model(self, table, model):
        index = ProgressiveKDTree(
            table, delta=0.2, size_threshold=64, cost_model=model
        )
        assert index._budget_rows() == pytest.approx(800, abs=1)

    def test_refinement_budget_rows_scaled_by_price_ratio(self, table, model):
        index = ProgressiveKDTree(
            table, delta=0.2, size_threshold=64, cost_model=model
        )
        queries = make_queries(table, 10, seed=92)
        while index.phase == CREATION:
            index.query(queries[0])
        assert index.phase == REFINEMENT
        ratio = model.creation_row_seconds() / model.refinement_row_seconds()
        expected = int(0.2 * table.n_rows * ratio)
        assert index._budget_rows() == pytest.approx(expected, abs=2)

    def test_gross_cost_bounded_by_scan_plus_budget(self, table, model):
        """The paper's PKD premise: t_i <= t_total = t_scan + t_budget."""
        index = ProgressiveKDTree(
            table, delta=0.2, size_threshold=64, cost_model=model
        )
        budget_seconds = 0.2 * table.n_rows * model.creation_row_seconds()
        # Generous scan bound: full candidate scan + lookups.
        t_total = model.full_scan_seconds(1.0) + budget_seconds
        for query in make_queries(table, 60, seed=93):
            stats = index.query(query).stats
            if index.converged:
                break
            assert model.seconds_of(stats) <= t_total * 1.2

    def test_delta_used_reported_each_query(self, table, model):
        index = ProgressiveKDTree(
            table, delta=0.3, size_threshold=64, cost_model=model
        )
        for query in make_queries(table, 5, seed=94):
            stats = index.query(query).stats
            assert stats.delta_used is not None
            assert stats.delta_used > 0

    def test_total_work_conserved_across_deltas(self, table, model):
        """The total indexing work to convergence is (nearly) independent
        of how it is sliced into per-query budgets."""
        totals = {}
        for delta in (0.2, 1.0):
            index = ProgressiveKDTree(
                table, delta=delta, size_threshold=64, cost_model=model
            )
            queries = make_queries(table, 400, seed=95)
            work = 0
            for query in queries:
                stats = index.query(query).stats
                work += stats.indexing_work
                if index.converged:
                    break
            assert index.converged
            totals[delta] = work
        assert totals[0.2] == pytest.approx(totals[1.0], rel=0.1)


class TestGreedyAccounting:
    def test_reactive_never_overshoots_much(self, table, model):
        index = GreedyProgressiveKDTree(
            table, delta=0.2, size_threshold=64, cost_model=model
        )
        queries = make_queries(table, 50, seed=96)
        index.query(queries[0])
        t_total = index._t_total
        for query in queries[1:]:
            stats = index.query(query).stats
            if index.converged:
                break
            assert model.seconds_of(stats) <= t_total * 1.15

    def test_t_total_fixed_after_first_query(self, table, model):
        index = GreedyProgressiveKDTree(
            table, delta=0.2, size_threshold=64, cost_model=model
        )
        queries = make_queries(table, 5, seed=97)
        index.query(queries[0])
        first = index._t_total
        for query in queries[1:]:
            index.query(query)
        assert index._t_total == first

    def test_budget_shrinks_for_expensive_queries(self, table, model):
        index = GreedyProgressiveKDTree(
            table, delta=0.2, size_threshold=64, cost_model=model
        )
        wide = make_queries(table, 1, width_fraction=0.9, seed=98)[0]
        narrow = make_queries(table, 1, width_fraction=0.02, seed=99)[0]
        index.query(narrow)  # establishes t_total
        wide_stats = index.query(wide).stats
        narrow_stats = index.query(narrow).stats
        # The narrow query leaves more headroom, so more indexing happens.
        assert narrow_stats.indexing_work >= wide_stats.indexing_work

    def test_no_budget_after_convergence(self, table, model):
        index = GreedyProgressiveKDTree(
            table, delta=1.0, size_threshold=256, cost_model=model
        )
        queries = make_queries(table, 200, seed=100)
        for query in queries:
            index.query(query)
            if index.converged:
                break
        assert index.converged
        stats = index.query(queries[0]).stats
        assert stats.indexing_work == 0


class TestScanCounters:
    def test_fullscan_counter_exact(self, table):
        from repro import FullScan, RangeQuery

        index = FullScan(table)
        # Unbounded dims 1,2: only the first column is checked.
        query = RangeQuery(
            [0.0, -np.inf, -np.inf], [100.0, np.inf, np.inf]
        )
        stats = index.query(query).stats
        assert stats.scanned == table.n_rows

    def test_candidate_counter_includes_rechecks(self, table):
        from repro import FullScan, RangeQuery

        index = FullScan(table)
        query = RangeQuery([0.0, 0.0, 0.0], [2_000.0, 4_000.0, 4_000.0])
        stats = index.query(query).stats
        candidates_dim0 = int((table.column(0) <= 2_000.0).sum())
        candidates_dim1 = int(
            (
                (table.column(0) <= 2_000.0) & (table.column(1) <= 4_000.0)
            ).sum()
        )
        assert stats.scanned == table.n_rows + candidates_dim0 + candidates_dim1
