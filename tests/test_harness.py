"""Benchmark harness: run execution, grouped indexes, run accessors."""

import numpy as np
import pytest

from repro import InvalidParameterError
from repro.bench import INDEX_FACTORIES, make_index, run_workload
from repro.workloads import make_synthetic_workload, shifting_workload
from tests.conftest import make_uniform_table


@pytest.fixture
def tiny_workload():
    return make_synthetic_workload("uniform", 1_500, 2, 15, 0.01, seed=3)


class TestMakeIndex:
    @pytest.mark.parametrize("name", sorted(INDEX_FACTORIES))
    def test_every_factory_constructs(self, name):
        table = make_uniform_table(200, 2, seed=1)
        index = make_index(name, table, size_threshold=32)
        assert index.n_rows == 200

    def test_unknown_name_rejected(self):
        table = make_uniform_table(10, 1)
        with pytest.raises(InvalidParameterError):
            make_index("nope", table)

    def test_progressive_params_forwarded(self):
        table = make_uniform_table(100, 2)
        index = make_index("PKD", table, size_threshold=32, delta=0.4)
        assert index.delta == 0.4


class TestRunWorkload:
    @pytest.mark.parametrize("name", ["FS", "AvgKD", "AKD", "PKD", "GPKD", "Q"])
    def test_validated_run(self, name, tiny_workload):
        run = run_workload(
            name, tiny_workload, size_threshold=64, validate=True, delta=0.3
        )
        assert run.n_queries == 15
        assert run.index_name == name

    def test_max_queries_truncates(self, tiny_workload):
        run = run_workload("FS", tiny_workload, max_queries=5)
        assert run.n_queries == 5

    def test_node_counts_monotone(self, tiny_workload):
        run = run_workload("AKD", tiny_workload, size_threshold=32)
        counts = run.node_counts
        assert all(b >= a for a, b in zip(counts, counts[1:]))

    def test_stats_per_query(self, tiny_workload):
        run = run_workload("PKD", tiny_workload, size_threshold=64, delta=0.25)
        assert len(run.stats) == 15
        assert run.seconds().shape == (15,)
        assert (run.work() > 0).all()

    def test_cumulative_series(self, tiny_workload):
        run = run_workload("FS", tiny_workload)
        cumulative = run.cumulative_seconds()
        assert (np.diff(cumulative) >= 0).all()
        assert cumulative[-1] == pytest.approx(run.seconds().sum())

    def test_converged_at(self, tiny_workload):
        run = run_workload("AvgKD", tiny_workload, size_threshold=64)
        assert run.converged_at() == 0  # full index converges on query one
        run_pkd = run_workload("PKD", tiny_workload, size_threshold=64, delta=1.0)
        at = run_pkd.converged_at()
        # delta=1 finishes creation on query one; refinement then takes a
        # handful more queries (the same time budget buys fewer swaps).
        assert at is not None and at <= 14

    def test_phase_totals_cover_phases(self, tiny_workload):
        run = run_workload("AKD", tiny_workload, size_threshold=64)
        totals = run.phase_totals()
        assert set(totals) == {
            "initialization",
            "adaptation",
            "index_search",
            "scan",
        }
        assert totals["scan"] > 0


class TestShiftingRuns:
    def test_one_index_per_group(self):
        workload = shifting_workload(800, 2, 30, n_groups=3, queries_per_shift=10)
        run = run_workload("AKD", workload, size_threshold=32, validate=True)
        assert run.n_queries == 30
        # Node counts jump when a fresh group starts getting indexed.
        assert run.node_counts[-1] > run.node_counts[5]

    def test_shift_correct_for_progressive(self):
        workload = shifting_workload(600, 2, 20, n_groups=2, queries_per_shift=10)
        run_workload("PKD", workload, size_threshold=32, delta=0.3, validate=True)

    def test_shift_correct_for_fullscan(self):
        workload = shifting_workload(600, 2, 20, n_groups=2, queries_per_shift=10)
        run = run_workload("FS", workload, validate=True)
        assert run.n_queries == 20


class TestValidateMode:
    def test_validate_raises_on_wrong_index(self, tiny_workload):
        """The harness's validate mode must actually catch wrong answers."""
        from repro.bench.harness import INDEX_FACTORIES
        from repro import WorkloadError
        from repro.baselines.full_scan import FullScan

        class LyingScan(FullScan):
            def _execute(self, query, stats):
                answer = super()._execute(query, stats)
                return answer[:-1] if answer.size else answer

        INDEX_FACTORIES["_lying"] = lambda table, size_threshold, **kw: LyingScan(table)
        try:
            with pytest.raises(WorkloadError):
                run_workload("_lying", tiny_workload, validate=True)
        finally:
            del INDEX_FACTORIES["_lying"]
