"""The invariant-checking subsystem: clean runs stay clean, injected
corruption gets caught.

Two halves.  The first drives every backend through every fuzzer
workload kind with the full per-query invariant suite — the paper's
eight techniques must hold I1–I6 at every intermediate state.  The
second half *injects* specific corruptions (an off-by-one partition, a
duplicated rowid, a misaligned column, a tampered partition job, a
non-deterministic converged tree) and asserts the checkers report each
one — a checker that never fires is indistinguishable from no checker.
"""

import numpy as np
import pytest

from repro import (
    AdaptiveKDTree,
    InvariantViolationError,
    ProgressiveKDTree,
    Table,
    assert_invariants,
)
from repro.core import partition
from repro.fuzz import BACKENDS, FuzzCase, build_workload, run_backend_case
from repro.invariants import (
    InvariantMonitor,
    convergence_determinism_errors,
    partition_job_errors,
    structural_errors,
)
from tests.conftest import make_queries, make_uniform_table

KINDS = ["uniform", "skewed", "zoom", "duplicate"]


# ------------------------------------------------------- clean backends

@pytest.mark.parametrize("backend", sorted(BACKENDS))
@pytest.mark.parametrize("kind", KINDS)
def test_every_backend_passes_per_query_invariants(backend, kind):
    """Acceptance criterion: every backend, every workload kind, the full
    invariant suite after every query — via the fuzzer's own driver, so
    the fuzzer and the tests cannot drift apart."""
    case = FuzzCase(
        seed=7, kind=kind, n_rows=800, n_dims=2, n_queries=20,
        size_threshold=32, delta=0.25,
    )
    table, queries = build_workload(case)
    position, problems = run_backend_case(backend, table, queries, case)
    assert position is None, (
        f"{backend}/{kind} failed at query #{position}: {problems}"
    )


def test_assert_invariants_clean_on_fresh_and_warmed_index():
    table = make_uniform_table(1_000, 2, seed=80)
    index = AdaptiveKDTree(table, size_threshold=64)
    assert_invariants(index)  # nothing materialised yet: trivially clean
    for query in make_queries(table, 10, width_fraction=0.2, seed=81):
        index.query(query)
        assert_invariants(index)


# ------------------------------------------------- injected corruption

def _off_by_one(real):
    """Wrap ``stable_partition`` to return ``split + 1`` when legal —
    the classic boundary bug: one ``> pivot`` row lands in the left
    child."""

    def broken(arrays, start, end, key_index, pivot):
        split = real(arrays, start, end, key_index, pivot)
        return split + 1 if start < split + 1 < end else split

    return broken


def test_injected_off_by_one_partition_is_caught(monkeypatch):
    """Acceptance criterion: a deliberate off-by-one in the adaptive
    KD-Tree's partition call trips the path-bounds checker (I2)."""
    import repro.core.adaptive_kdtree as akd_module

    monkeypatch.setattr(
        akd_module, "stable_partition", _off_by_one(partition.stable_partition)
    )
    table = make_uniform_table(1_000, 2, seed=82)
    index = AdaptiveKDTree(table, size_threshold=32)
    caught = False
    for query in make_queries(table, 10, width_fraction=0.3, seed=83):
        index.query(query)
        problems = structural_errors(index)
        if problems:
            caught = True
            assert any("pivot" in p or "bound" in p for p in problems)
            break
    assert caught, "off-by-one partition was never detected"


def test_injected_off_by_one_in_eager_build_is_caught(monkeypatch):
    """The same bug in the up-front mean-pivot build is caught too."""
    import repro.baselines.full_kdtree as full_module

    monkeypatch.setattr(
        full_module, "stable_partition", _off_by_one(partition.stable_partition)
    )
    from repro import AverageKDTree

    table = make_uniform_table(1_000, 2, seed=84)
    index = AverageKDTree(table, size_threshold=32)
    index.query(next(iter(make_queries(table, 1, seed=85))))
    with pytest.raises(InvariantViolationError):
        assert_invariants(index)


def test_corrupted_rowid_is_caught():
    table = make_uniform_table(500, 2, seed=86)
    index = AdaptiveKDTree(table, size_threshold=32)
    for query in make_queries(table, 5, width_fraction=0.2, seed=87):
        index.query(query)
    assert_invariants(index)
    index.index_table.rowids[0] = index.index_table.rowids[1]  # duplicate
    problems = structural_errors(index)
    assert any("duplicate rowids" in p for p in problems)


def test_misaligned_column_is_caught():
    table = make_uniform_table(500, 2, seed=88)
    index = AdaptiveKDTree(table, size_threshold=32)
    for query in make_queries(table, 5, width_fraction=0.2, seed=89):
        index.query(query)
    index.index_table.columns[1][3] += 1_000.0  # no longer matches its rowid
    problems = structural_errors(index)
    assert any("misaligned" in p for p in problems)


def _pkd_with_paused_job():
    """Drive a PKD until a partition job is paused mid-piece."""
    table = make_uniform_table(4_000, 2, seed=90)
    index = ProgressiveKDTree(table, delta=0.05, size_threshold=64)
    for query in make_queries(table, 60, width_fraction=0.2, seed=91):
        index.query(query)
        if index.phase != "refinement":
            continue
        for leaf in index.tree.iter_leaves():
            job = getattr(leaf, "job", None)
            if job is not None and not job.done and job.lo > job.start:
                return index, leaf, job
    raise AssertionError("never observed a paused partition job")


def test_tampered_partition_job_pivot_is_caught():
    index, leaf, job = _pkd_with_paused_job()
    assert partition_job_errors(index.debug_state()) == []
    job.pivot += 1e6  # job no longer matches the piece's scheduled pivot
    problems = structural_errors(index)
    assert any("disagrees with scheduled pivot" in p for p in problems)


def test_misclassified_row_in_paused_job_is_caught():
    index, leaf, job = _pkd_with_paused_job()
    keys = index.index_table.columns[job.key_index]
    keys[job.start] = job.pivot + 1e6  # violates the classified-left region
    problems = structural_errors(index)
    assert any("classified-left" in p for p in problems)


def test_tampered_converged_tree_fails_determinism():
    rng = np.random.default_rng(92)
    table = Table.from_matrix(
        rng.integers(0, 1_000, size=(1_500, 2)).astype(np.float64)
    )
    index = ProgressiveKDTree(table, delta=1.0, size_threshold=64)
    for query in make_queries(table, 30, width_fraction=0.3, seed=93):
        index.query(query)
    assert index.converged
    assert convergence_determinism_errors(index) == []
    index.tree.root.key += 0.5  # converged tree no longer matches eager build
    assert convergence_determinism_errors(index) != []


def test_monitor_catches_node_count_regression():
    table = make_uniform_table(1_000, 2, seed=94)
    index = AdaptiveKDTree(table, size_threshold=32)
    monitor = InvariantMonitor(index)
    for query in make_queries(table, 5, width_fraction=0.3, seed=95):
        index.query(query)
        monitor.assert_ok()
    index.tree.node_count -= 1
    problems = monitor.observe()
    assert any("shrank" in p for p in problems)


def test_monitor_catches_convergence_regression():
    table = make_uniform_table(600, 2, seed=96)
    index = ProgressiveKDTree(table, delta=1.0, size_threshold=64)
    monitor = InvariantMonitor(index)
    for query in make_queries(table, 20, width_fraction=0.3, seed=97):
        index.query(query)
        monitor.assert_ok()
    assert index.converged
    converged_leaf = next(
        leaf for leaf in index.tree.iter_leaves() if leaf.converged
    )
    converged_leaf.converged = False  # a converged piece must never reopen
    problems = monitor.observe()
    assert any("vanished" in p or "reverted" in p for p in problems)


def test_invariant_violation_error_reports_index_and_problems():
    error = InvariantViolationError("PKD", [f"problem {n}" for n in range(12)])
    assert error.index_name == "PKD"
    assert len(error.problems) == 12
    assert "problem 0" in str(error)
    assert "+2 more" in str(error)


# --------------------------------------------------- session integration

def test_session_validate_mode_and_check():
    from repro import ExplorationSession

    rng = np.random.default_rng(98)
    session = ExplorationSession(
        technique="progressive", size_threshold=64, validate=True
    )
    session.register(
        "t", {"x": rng.random(1_000) * 100, "y": rng.random(1_000) * 100}
    )
    for _ in range(10):
        low = float(rng.random() * 80)
        session.query("t", x=(low, low + 10), y=(low, low + 10))
    findings = session.check()
    assert findings == {"t/x,y": []}
