"""The work-unit regression guard, and the repository's own baseline."""

import json
import os

import pytest

from repro.bench.regression import (
    Drift,
    baseline_metrics,
    compare_baseline,
    record_baseline,
)

BASELINE_PATH = os.path.join(
    os.path.dirname(__file__), "data", "work_baseline.json"
)


class TestMechanics:
    def test_metrics_deterministic(self):
        assert baseline_metrics() == baseline_metrics()

    def test_record_and_compare_roundtrip(self, tmp_path):
        path = str(tmp_path / "baseline.json")
        record_baseline(path)
        drift = compare_baseline(path)
        assert drift.ok
        assert "OK" in str(drift)

    def test_detects_changed_value(self, tmp_path):
        path = str(tmp_path / "baseline.json")
        metrics = record_baseline(path)
        key = sorted(metrics)[0]
        metrics[key] += 1.0
        with open(path, "w") as handle:
            json.dump(metrics, handle)
        drift = compare_baseline(path)
        assert not drift.ok
        assert drift.changed
        assert "drift" in str(drift)

    def test_detects_missing_and_added(self, tmp_path):
        path = str(tmp_path / "baseline.json")
        metrics = record_baseline(path)
        key = sorted(metrics)[0]
        removed = dict(metrics)
        del removed[key]
        removed["bogus/metric"] = 1.0
        with open(path, "w") as handle:
            json.dump(removed, handle)
        drift = compare_baseline(path)
        assert drift.added  # the key we removed reappears as new
        assert drift.missing  # the bogus one is gone

    def test_tolerance_absorbs_small_drift(self, tmp_path):
        path = str(tmp_path / "baseline.json")
        metrics = record_baseline(path)
        key = sorted(metrics)[0]
        metrics[key] *= 1.001
        with open(path, "w") as handle:
            json.dump(metrics, handle)
        assert compare_baseline(path, tolerance=0.01).ok
        assert not compare_baseline(path, tolerance=0.0).ok


class TestRepositoryBaseline:
    """The checked-in baseline: algorithm behaviour must not silently drift."""

    def test_baseline_exists(self):
        assert os.path.exists(BASELINE_PATH), (
            "run tests/data/make_baseline.py to record the baseline"
        )

    def test_current_code_matches_baseline(self):
        drift = compare_baseline(BASELINE_PATH)
        assert drift.ok, (
            f"{drift}\nIf the change is intentional, re-record with "
            "tests/data/make_baseline.py"
        )
