"""Property-based tests (hypothesis) for the scan kernels.

The three kernels — :func:`range_scan` (option 2, candidate list),
:func:`full_scan` (option 2 over whole columns), and
:func:`full_scan_bitmap` (option 1, per-column bitmaps) — must agree with
each other and with a naive mask on the paper's half-open semantics
``low < x <= high``, including ±inf sides, duplicate-laden columns, and
bounds that sit exactly on data values.

Additionally, every *registered and available* kernel backend
(:mod:`repro.kernels`) must be behaviourally indistinguishable from the
``reference`` backend: bit-identical positions in the same order and
identical ``QueryStats`` work counters, for arbitrary sub-windows and
arbitrary residual-check flags.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import RangeQuery, kernels
from repro.core.metrics import QueryStats
from repro.core.scan import full_scan, full_scan_bitmap, range_scan


@st.composite
def scan_case(draw):
    """Random columns plus one query biased toward boundary collisions."""
    n_rows = draw(st.integers(min_value=0, max_value=300))
    n_dims = draw(st.integers(min_value=1, max_value=4))
    seed = draw(st.integers(min_value=0, max_value=2**16))
    rng = np.random.default_rng(seed)
    kind = draw(st.sampled_from(["uniform", "duplicate", "constant"]))
    if kind == "uniform":
        matrix = rng.random((n_rows, n_dims)) * 100
    elif kind == "duplicate":
        matrix = rng.integers(0, 6, size=(n_rows, n_dims)).astype(float)
    else:
        matrix = np.full((n_rows, n_dims), 3.0)
    columns = [np.ascontiguousarray(matrix[:, dim]) for dim in range(n_dims)]
    lows, highs = [], []
    for dim in range(n_dims):
        side = draw(st.sampled_from(["box", "exact", "low_inf", "high_inf", "empty"]))
        if side == "low_inf":
            low, high = -np.inf, draw(st.floats(-5, 105, allow_nan=False))
        elif side == "high_inf":
            low, high = draw(st.floats(-5, 105, allow_nan=False)), np.inf
        elif side == "exact" and n_rows:
            # Bounds equal to actual data values: the off-by-one surface.
            low = float(columns[dim][draw(st.integers(0, n_rows - 1))])
            high = float(columns[dim][draw(st.integers(0, n_rows - 1))])
            if low > high:
                low, high = high, low
        elif side == "empty":
            low = high = draw(st.floats(-5, 105, allow_nan=False))
        else:
            low = draw(st.floats(-5, 105, allow_nan=False))
            high = draw(st.floats(-5, 105, allow_nan=False))
            if low > high:
                low, high = high, low
        lows.append(low)
        highs.append(high)
    return columns, RangeQuery(lows, highs)


def _naive(columns, query):
    """Literal transcription of the half-open predicate."""
    n_rows = columns[0].shape[0] if columns else 0
    mask = np.ones(n_rows, dtype=bool)
    for dim in range(query.n_dims):
        mask &= columns[dim] > query.lows[dim]
        mask &= columns[dim] <= query.highs[dim]
    return np.flatnonzero(mask).astype(np.int64)


@given(scan_case())
@settings(max_examples=200, deadline=None)
def test_scan_kernels_agree_on_half_open_semantics(case):
    columns, query = case
    want = _naive(columns, query)
    assert np.array_equal(
        np.sort(full_scan(columns, query, QueryStats())), want
    )
    assert np.array_equal(
        np.sort(full_scan_bitmap(columns, query, QueryStats())), want
    )
    n_rows = int(columns[0].shape[0])
    assert np.array_equal(
        np.sort(range_scan(columns, 0, n_rows, query, QueryStats())), want
    )


@given(scan_case(), st.integers(min_value=0, max_value=2**16))
@settings(max_examples=150, deadline=None)
def test_range_scan_subrange_is_a_restriction(case, seed):
    """Scanning ``[start, end)`` returns exactly the full-scan matches that
    fall inside the window, as absolute indices."""
    columns, query = case
    n_rows = int(columns[0].shape[0])
    rng = np.random.default_rng(seed)
    start = int(rng.integers(0, n_rows + 1))
    end = int(rng.integers(start, n_rows + 1))
    got = np.sort(range_scan(columns, start, end, query, QueryStats()))
    want = _naive(columns, query)
    want = want[(want >= start) & (want < end)]
    assert np.array_equal(got, want)


@given(scan_case())
@settings(max_examples=150, deadline=None)
def test_range_scan_skip_flags_drop_only_redundant_checks(case):
    """With every flag False the whole window qualifies; with all True the
    kernel matches the default behaviour — the KD piece-scan contract."""
    columns, query = case
    n_rows = int(columns[0].shape[0])
    n_dims = query.n_dims
    all_off = range_scan(
        columns, 0, n_rows, query, QueryStats(),
        check_low=[False] * n_dims, check_high=[False] * n_dims,
    )
    assert np.array_equal(all_off, np.arange(n_rows, dtype=np.int64))
    all_on = range_scan(
        columns, 0, n_rows, query, QueryStats(),
        check_low=[True] * n_dims, check_high=[True] * n_dims,
    )
    assert np.array_equal(np.sort(all_on), _naive(columns, query))


@pytest.mark.parametrize("backend_name", kernels.available_backends())
@given(case=scan_case(), seed=st.integers(min_value=0, max_value=2**16))
@settings(max_examples=100, deadline=None)
def test_every_backend_is_bit_identical_to_reference(backend_name, case, seed):
    """Same positions, same order, same counters — for any window and any
    residual-check flag combination a KD piece scan can produce."""
    columns, query = case
    n_rows = int(columns[0].shape[0])
    rng = np.random.default_rng(seed)
    start = int(rng.integers(0, n_rows + 1))
    end = int(rng.integers(start, n_rows + 1))
    if rng.integers(0, 2):
        check_low = rng.integers(0, 2, query.n_dims).astype(bool)
        check_high = rng.integers(0, 2, query.n_dims).astype(bool)
    else:
        check_low = check_high = None
    backend = kernels.get_backend(backend_name)
    reference = kernels.get_backend("reference")
    got_stats, want_stats = QueryStats(), QueryStats()
    got = backend.range_scan(
        columns, start, end, query, got_stats, check_low, check_high
    )
    want = reference.range_scan(
        columns, start, end, query, want_stats, check_low, check_high
    )
    assert got.dtype == want.dtype
    assert np.array_equal(got, want)
    assert got_stats.scanned == want_stats.scanned
    assert got_stats.copied == want_stats.copied
    assert got_stats.swapped == want_stats.swapped


@given(scan_case())
@settings(max_examples=100, deadline=None)
def test_boundary_rows_are_half_open(case):
    """Rows exactly at ``low`` are excluded; rows exactly at ``high`` are
    included — spelled out separately from the naive-mask comparison so a
    symmetric boundary bug cannot cancel out."""
    columns, query = case
    matches = set(full_scan(columns, query, QueryStats()).tolist())
    for dim in range(query.n_dims):
        column = columns[dim]
        for row in np.flatnonzero(column == query.lows[dim]):
            assert int(row) not in matches
        at_high = np.flatnonzero(column == query.highs[dim])
        for row in at_high:
            inside = all(
                query.lows[d] < columns[d][row] <= query.highs[d]
                for d in range(query.n_dims)
            )
            assert (int(row) in matches) == inside
