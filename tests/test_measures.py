"""Paper measures computed over crafted runs."""

import pytest

from repro.bench.harness import WorkloadRun
from repro.bench.measures import (
    convergence_query,
    convergence_seconds,
    first_query_seconds,
    first_query_work,
    payoff_query,
    payoff_seconds,
    total_seconds,
    total_work,
    variance,
)
from repro.core.metrics import QueryStats


def run_from(seconds, converged_at=None, work=None):
    run = WorkloadRun("w", "ix")
    for position, value in enumerate(seconds):
        stats = QueryStats()
        stats.seconds = value
        stats.scanned = work[position] if work else int(value * 1000)
        stats.converged = converged_at is not None and position >= converged_at
        run.stats.append(stats)
    return run


class TestFirstQuery:
    def test_seconds(self):
        assert first_query_seconds(run_from([2.0, 1.0])) == 2.0

    def test_work(self):
        assert first_query_work(run_from([1.0], work=[77])) == 77


class TestPayoff:
    def test_pays_off_when_cumulative_crosses(self):
        index_run = run_from([5.0, 1.0, 1.0, 1.0])
        baseline = run_from([2.0, 2.0, 2.0, 2.0])
        assert payoff_query(index_run, baseline) == 3

    def test_immediate_payoff(self):
        index_run = run_from([1.0, 1.0])
        baseline = run_from([2.0, 2.0])
        assert payoff_query(index_run, baseline) == 0

    def test_never_pays_off(self):
        index_run = run_from([5.0, 5.0])
        baseline = run_from([1.0, 1.0])
        assert payoff_query(index_run, baseline) is None

    def test_payoff_seconds_at_crossing(self):
        index_run = run_from([5.0, 1.0, 1.0, 1.0])
        baseline = run_from([2.0, 2.0, 2.0, 2.0])
        assert payoff_seconds(index_run, baseline) == pytest.approx(8.0)

    def test_payoff_seconds_total_when_never(self):
        # Paper convention (Shift workload): report the total time.
        index_run = run_from([5.0, 5.0])
        baseline = run_from([1.0, 1.0])
        assert payoff_seconds(index_run, baseline) == pytest.approx(10.0)

    def test_work_domain(self):
        index_run = run_from([0, 0], work=[10, 0])
        baseline = run_from([0, 0], work=[5, 5])
        assert payoff_query(index_run, baseline, use_work=True) == 1


class TestConvergence:
    def test_query_and_seconds(self):
        run = run_from([2.0, 2.0, 1.0, 1.0], converged_at=2)
        assert convergence_query(run) == 2
        assert convergence_seconds(run) == pytest.approx(5.0)

    def test_never_converges(self):
        run = run_from([1.0, 1.0])
        assert convergence_query(run) is None
        assert convergence_seconds(run) is None


class TestVariance:
    def test_constant_series_zero(self):
        assert variance(run_from([1.0] * 10)) == 0.0

    def test_window_limited(self):
        quiet_then_spiky = [1.0] * 50 + [100.0] * 10
        assert variance(run_from(quiet_then_spiky), limit=50) == 0.0

    def test_window_stops_at_convergence(self):
        spiky_after_convergence = run_from(
            [1.0, 1.0, 1.0, 50.0, 50.0], converged_at=2
        )
        assert variance(spiky_after_convergence) == 0.0

    def test_variance_ordering(self):
        jittery = run_from([1.0, 5.0, 1.0, 5.0])
        smooth = run_from([3.0, 3.1, 2.9, 3.0])
        assert variance(jittery) > variance(smooth)

    def test_work_domain(self):
        run = run_from([0, 0, 0], work=[10, 10, 10])
        assert variance(run, use_work=True) == 0.0


class TestTotals:
    def test_total_seconds(self):
        assert total_seconds(run_from([1.0, 2.0, 3.0])) == pytest.approx(6.0)

    def test_total_work(self):
        assert total_work(run_from([0, 0], work=[3, 4])) == 7
