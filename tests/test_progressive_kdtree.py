"""Progressive KD-Tree: budgets, phases, deterministic convergence."""

import numpy as np
import pytest

from repro import (
    AverageKDTree,
    CostModel,
    InvalidParameterError,
    MachineProfile,
    ProgressiveKDTree,
    RangeQuery,
    Table,
)
from repro.core.progressive_kdtree import CONVERGED, CREATION, REFINEMENT
from tests.conftest import assert_correct, make_queries, make_uniform_table


def drive_to_convergence(index, queries, max_rounds=200):
    """Replay queries (cycling) until the index converges."""
    count = 0
    while not index.converged:
        index.query(queries[count % len(queries)])
        count += 1
        assert count < max_rounds, "index failed to converge"
    return count


class TestCorrectness:
    @pytest.mark.parametrize("delta", [0.05, 0.2, 0.5, 1.0])
    def test_correct_at_every_stage(self, small_table, small_queries, delta):
        index = ProgressiveKDTree(small_table, delta=delta, size_threshold=64)
        assert_correct(index, small_table, small_queries)

    def test_correct_on_duplicates(self, duplicate_table):
        queries = make_queries(duplicate_table, 30, width_fraction=0.3, seed=2)
        index = ProgressiveKDTree(duplicate_table, delta=0.15, size_threshold=32)
        assert_correct(index, duplicate_table, queries)

    def test_correct_on_constant_column(self, constant_column_table):
        queries = [
            RangeQuery([10.0, 40.0, 10.0], [60.0, 50.0, 60.0]),
            RangeQuery([5.0, 0.0, 5.0], [95.0, 41.9, 95.0]),
        ] * 10
        index = ProgressiveKDTree(
            constant_column_table, delta=0.2, size_threshold=32
        )
        assert_correct(index, constant_column_table, queries)

    def test_correct_when_first_column_constant(self):
        rng = np.random.default_rng(5)
        table = Table([np.full(1_000, 3.0), rng.random(1_000) * 100])
        queries = [
            RangeQuery([2.0, 10.0 + i], [4.0, 30.0 + i]) for i in range(25)
        ]
        index = ProgressiveKDTree(table, delta=0.3, size_threshold=32)
        assert_correct(index, table, queries)

    def test_correct_after_convergence(self, small_table, small_queries):
        index = ProgressiveKDTree(small_table, delta=0.5, size_threshold=64)
        drive_to_convergence(index, small_queries)
        assert_correct(index, small_table, small_queries)


class TestPhases:
    def test_starts_in_creation(self, small_table):
        index = ProgressiveKDTree(small_table, delta=0.25, size_threshold=64)
        assert index.phase == CREATION

    def test_creation_copies_delta_fraction_per_query(self, small_table):
        index = ProgressiveKDTree(small_table, delta=0.25, size_threshold=64)
        queries = make_queries(small_table, 6, seed=3)
        expected = int(round(0.25 * small_table.n_rows))
        for i in range(3):
            index.query(queries[i])
            assert index.rows_copied == min((i + 1) * expected, small_table.n_rows)

    def test_creation_finishes_after_ceil_inverse_delta_queries(self, small_table):
        index = ProgressiveKDTree(small_table, delta=0.34, size_threshold=64)
        queries = make_queries(small_table, 5, seed=4)
        for i in range(3):
            assert index.phase == CREATION
            index.query(queries[i])
        assert index.phase in (REFINEMENT, CONVERGED)

    def test_each_base_row_copied_exactly_once(self, small_table):
        index = ProgressiveKDTree(small_table, delta=0.4, size_threshold=64)
        queries = make_queries(small_table, 4, seed=5)
        for i in range(3):
            index.query(queries[i])
        rowids = np.sort(index.index_table.rowids)
        assert np.array_equal(rowids, np.arange(small_table.n_rows))

    def test_delta_one_finishes_creation_in_one_query(self, small_table):
        index = ProgressiveKDTree(small_table, delta=1.0, size_threshold=64)
        index.query(make_queries(small_table, 1, seed=6)[0])
        assert index.rows_copied == small_table.n_rows
        assert index.phase in (REFINEMENT, CONVERGED)

    def test_first_query_cost_scales_with_delta(self, small_table):
        query = make_queries(small_table, 1, seed=7)[0]
        small = ProgressiveKDTree(small_table, delta=0.1, size_threshold=64)
        large = ProgressiveKDTree(small_table, delta=1.0, size_threshold=64)
        work_small = small.query(query).stats.indexing_work
        work_large = large.query(query).stats.indexing_work
        assert work_large > 5 * work_small

    def test_refinement_budget_bounded(self, small_table, small_queries):
        delta = 0.2
        index = ProgressiveKDTree(small_table, delta=delta, size_threshold=64)
        budget_rows = delta * small_table.n_rows
        d = small_table.n_columns
        for query in small_queries * 5:
            stats = index.query(query).stats
            if index.converged:
                break
            # swapped counts element visits across d+1 arrays; allow the
            # one-row overshoot the partitioner needs for progress.
            assert stats.swapped <= (budget_rows + len(small_queries)) * (d + 1) * 1.2

    def test_no_indexing_after_convergence(self, small_table, small_queries):
        index = ProgressiveKDTree(small_table, delta=0.5, size_threshold=64)
        drive_to_convergence(index, small_queries)
        stats = index.query(small_queries[0]).stats
        assert stats.indexing_work == 0
        assert stats.nodes_created == 0
        assert stats.delta_used is not None  # still reported (as budget)


class TestConvergence:
    def test_converges(self, small_table, small_queries):
        index = ProgressiveKDTree(small_table, delta=0.3, size_threshold=64)
        drive_to_convergence(index, small_queries)
        assert index.phase == CONVERGED
        assert index.converged

    def test_all_leaves_below_threshold(self, small_table, small_queries):
        index = ProgressiveKDTree(small_table, delta=0.3, size_threshold=64)
        drive_to_convergence(index, small_queries)
        for leaf in index.tree.iter_leaves():
            assert leaf.size <= 64 or leaf.converged

    def test_tree_validates_throughout(self, small_table, small_queries):
        index = ProgressiveKDTree(small_table, delta=0.15, size_threshold=64)
        for query in small_queries * 3:
            index.query(query)
            if index.tree is not None:
                index.tree.validate(index.index_table.columns)
            if index.converged:
                break

    def test_smaller_delta_converges_later(self, small_table, small_queries):
        fast = ProgressiveKDTree(small_table, delta=0.5, size_threshold=64)
        slow = ProgressiveKDTree(small_table, delta=0.1, size_threshold=64)
        fast_queries = drive_to_convergence(fast, small_queries)
        slow_queries = drive_to_convergence(slow, small_queries, max_rounds=500)
        assert slow_queries > fast_queries

    def test_number_of_creation_queries_independent_of_dims(self):
        # delta fixes a fraction of N per query, so dimensionality must not
        # change how many queries the creation phase takes.
        for d in (2, 4):
            table = make_uniform_table(2_000, d, seed=d)
            index = ProgressiveKDTree(table, delta=0.25, size_threshold=64)
            queries = make_queries(table, 10, seed=d + 1)
            count = 0
            while index.phase == CREATION:
                index.query(queries[count % len(queries)])
                count += 1
            assert count == 4

    def test_converged_structure_matches_average_kdtree(self):
        # On integer-valued data, sums are exact, so the progressive
        # mean-pivot refinement must produce the same pieces as AvgKD.
        rng = np.random.default_rng(11)
        table = Table.from_matrix(
            rng.integers(0, 1_000, size=(2_000, 2)).astype(float)
        )
        queries = make_queries(table, 10, width_fraction=0.2, seed=12)
        progressive = ProgressiveKDTree(table, delta=0.5, size_threshold=64)
        drive_to_convergence(progressive, queries)
        eager = AverageKDTree(table, size_threshold=64)
        eager.query(queries[0])
        progressive_pieces = sorted(
            (leaf.start, leaf.end) for leaf in progressive.tree.iter_leaves()
        )
        eager_pieces = sorted(
            (leaf.start, leaf.end) for leaf in eager.tree.iter_leaves()
        )
        assert progressive_pieces == eager_pieces

    def test_constant_table_converges_immediately_after_creation(self):
        table = Table([np.full(500, 1.0), np.full(500, 2.0)])
        index = ProgressiveKDTree(table, delta=0.5, size_threshold=64)
        queries = [RangeQuery([0.0, 0.0], [5.0, 5.0])] * 20
        drive_to_convergence(index, queries, max_rounds=30)


class TestInteractivityThreshold:
    def test_tau_caps_delta_when_scan_fits(self):
        table = make_uniform_table(10_000, 2, seed=13)
        model = CostModel(MachineProfile.deterministic(), table.n_rows, 2)
        tau = model.full_scan_seconds() * 1.2  # little headroom
        index = ProgressiveKDTree(
            table, delta=0.9, size_threshold=64, tau=tau, cost_model=model
        )
        stats = index.query(make_queries(table, 1, seed=14)[0]).stats
        assert stats.delta_used < 0.9  # capped below the user delta

    def test_tau_ignored_while_scan_exceeds_it(self):
        table = make_uniform_table(10_000, 2, seed=15)
        model = CostModel(MachineProfile.deterministic(), table.n_rows, 2)
        tau = model.full_scan_seconds() / 10
        index = ProgressiveKDTree(
            table, delta=0.3, size_threshold=64, tau=tau, cost_model=model
        )
        stats = index.query(make_queries(table, 1, seed=16)[0]).stats
        assert stats.delta_used == pytest.approx(0.3, rel=0.01)


class TestValidation:
    def test_invalid_delta(self, small_table):
        for bad in (0.0, -0.5, 1.5):
            with pytest.raises(InvalidParameterError):
                ProgressiveKDTree(small_table, delta=bad)

    def test_invalid_threshold(self, small_table):
        with pytest.raises(InvalidParameterError):
            ProgressiveKDTree(small_table, size_threshold=0)

    def test_invalid_tau(self, small_table):
        with pytest.raises(InvalidParameterError):
            ProgressiveKDTree(small_table, tau=0.0)
