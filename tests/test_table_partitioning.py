"""Table partitioning: range sharding plus Adaptive Table Partitioning."""

import numpy as np
import pytest

from repro import (
    AdaptiveKDTree,
    AdaptiveTablePartitioner,
    InvalidParameterError,
    InvalidTableError,
    RangeQuery,
    Table,
)
from repro.core import ShardedIndex, ShardedTable
from repro.core.metrics import QueryStats
from repro.fuzz import BACKENDS, FuzzCase, build_workload, make_backend
from repro.invariants import shard_errors, structural_errors
from repro.parallel import config as par_config
from tests.conftest import make_queries, make_uniform_table, reference_answer


@pytest.fixture
def table_with_payload():
    rng = np.random.default_rng(6)
    n = 2_500
    dims = [rng.random(n) * 100 for _ in range(2)]
    payloads = [rng.random(n) * 10, np.arange(n, dtype=float)]
    return Table(dims + payloads, names=["x", "y", "weight", "serial"])


def dim_queries(table, n, seed=7):
    projected = table.project([0, 1])
    return make_queries(projected, n, width_fraction=0.25, seed=seed)


class TestCorrectness:
    def test_answers_match_reference(self, table_with_payload):
        partitioner = AdaptiveTablePartitioner(
            table_with_payload, dimension_positions=[0, 1], size_threshold=32
        )
        projected = table_with_payload.project([0, 1])
        for query in dim_queries(table_with_payload, 15):
            got = np.sort(partitioner.query(query).row_ids)
            want = reference_answer(projected, query)
            assert np.array_equal(got, want)

    def test_all_columns_as_dimensions(self):
        table = make_uniform_table(1_500, 3, seed=8)
        partitioner = AdaptiveTablePartitioner(table, size_threshold=32)
        for query in make_queries(table, 10, seed=9):
            got = np.sort(partitioner.query(query).row_ids)
            want = reference_answer(table, query)
            assert np.array_equal(got, want)

    def test_tree_validates(self, table_with_payload):
        partitioner = AdaptiveTablePartitioner(
            table_with_payload, dimension_positions=[0, 1], size_threshold=32
        )
        for query in dim_queries(table_with_payload, 8):
            partitioner.query(query)
        partitioner.tree.validate(
            [partitioner.storage(0), partitioner.storage(1)]
        )


class TestPayloadCoherence:
    def test_rows_stay_aligned(self, table_with_payload):
        partitioner = AdaptiveTablePartitioner(
            table_with_payload, dimension_positions=[0, 1], size_threshold=32
        )
        for query in dim_queries(table_with_payload, 10):
            partitioner.query(query)
        # The 'serial' payload equals the original row position, so after
        # any amount of reorganisation storage[serial] must equal rowids.
        serial = partitioner.storage(3)
        assert np.array_equal(serial.astype(int), partitioner.row_ids_in_order())

    def test_fetch_reads_partitioned_payload(self, table_with_payload):
        partitioner = AdaptiveTablePartitioner(
            table_with_payload, dimension_positions=[0, 1], size_threshold=32
        )
        query = dim_queries(table_with_payload, 1)[0]
        result = partitioner.partitioned_query(query)
        direct = result.fetch(2)
        via_rowids = table_with_payload.column(2)[result.row_ids]
        assert np.allclose(np.sort(direct), np.sort(via_rowids))

    def test_payload_movement_is_charged(self, table_with_payload):
        wide = AdaptiveTablePartitioner(
            table_with_payload, dimension_positions=[0, 1], size_threshold=32
        )
        narrow = AdaptiveKDTree(
            table_with_payload.project([0, 1]), size_threshold=32
        )
        query = dim_queries(table_with_payload, 1)[0]
        wide_cost = wide.query(query).stats.copied
        narrow_cost = narrow.query(query).stats.copied
        assert wide_cost > narrow_cost  # payload columns move too


class TestResultRuns:
    def test_runs_compress_contiguous_positions(self, table_with_payload):
        partitioner = AdaptiveTablePartitioner(
            table_with_payload, dimension_positions=[0, 1], size_threshold=32
        )
        queries = dim_queries(table_with_payload, 6)
        for query in queries:
            partitioner.query(query)
        result = partitioner.partitioned_query(queries[0])
        runs = partitioner.result_runs(result.positions)
        covered = sum(end - start for start, end in runs)
        assert covered == result.count
        for (s0, e0), (s1, e1) in zip(runs, runs[1:]):
            assert e0 < s1  # disjoint, ordered

    def test_empty_runs(self, table_with_payload):
        partitioner = AdaptiveTablePartitioner(
            table_with_payload, dimension_positions=[0, 1]
        )
        assert partitioner.result_runs(np.empty(0, dtype=np.int64)) == []

    def test_partitioning_increases_contiguity(self):
        # After adaptation, a repeated query's answer occupies fewer runs
        # than the same answer over the unorganised table would.
        table = make_uniform_table(4_000, 2, seed=10)
        partitioner = AdaptiveTablePartitioner(table, size_threshold=64)
        query = make_queries(table, 1, width_fraction=0.2, seed=11)[0]
        result = partitioner.partitioned_query(query)
        runs = partitioner.result_runs(result.positions)
        assert len(runs) < max(1, result.count // 2)


class TestValidation:
    def test_rejects_bad_dimension_positions(self, table_with_payload):
        with pytest.raises(InvalidTableError):
            AdaptiveTablePartitioner(table_with_payload, dimension_positions=[0, 9])
        with pytest.raises(InvalidTableError):
            AdaptiveTablePartitioner(table_with_payload, dimension_positions=[0, 0])
        with pytest.raises(InvalidTableError):
            AdaptiveTablePartitioner(table_with_payload, dimension_positions=[])

    def test_rejects_bad_threshold(self, table_with_payload):
        with pytest.raises(InvalidParameterError):
            AdaptiveTablePartitioner(table_with_payload, size_threshold=0)

    def test_storage_before_query_rejected(self, table_with_payload):
        partitioner = AdaptiveTablePartitioner(table_with_payload)
        with pytest.raises(InvalidTableError):
            partitioner.storage(0)

    def test_query_dimension_arity(self, table_with_payload):
        partitioner = AdaptiveTablePartitioner(
            table_with_payload, dimension_positions=[0, 1]
        )
        from repro import InvalidQueryError

        with pytest.raises(InvalidQueryError):
            partitioner.query(RangeQuery([0.0], [1.0]))


# ------------------------------------------------------------------ sharding

def gpkd_factory(size_threshold=64, delta=0.25):
    from repro.core import GreedyProgressiveKDTree

    return lambda table: GreedyProgressiveKDTree(
        table, delta=delta, size_threshold=size_threshold
    )


@pytest.fixture(autouse=True)
def thread_reset():
    workers = par_config.get_workers()
    yield
    par_config.set_workers(workers)


class TestShardBoundaries:
    def test_balanced_contiguous_complete(self):
        table = make_uniform_table(1_003, 2, seed=3)
        sharded = ShardedTable(table, 4)
        sizes = [shard.n_rows for shard in sharded.shards]
        assert sum(sizes) == table.n_rows
        assert max(sizes) - min(sizes) <= 1
        cursor = 0
        covered = []
        for shard in sharded.shards:
            assert shard.row_offset == cursor
            covered.extend(
                range(shard.row_offset, shard.row_offset + shard.n_rows)
            )
            cursor += shard.n_rows
        assert covered == list(range(table.n_rows))  # disjoint + complete

    def test_shard_views_are_zero_copy(self):
        table = make_uniform_table(400, 2, seed=4)
        sharded = ShardedTable(table, 3)
        for shard in sharded.shards:
            for dim in range(table.n_columns):
                view = shard.table.column(dim)
                assert view.base is not None
                assert np.shares_memory(view, table.column(dim))

    def test_shard_count_clamped_to_rows(self):
        table = make_uniform_table(3, 2, seed=5)
        assert ShardedTable(table, 10).n_shards == 3

    def test_rejects_nonpositive_shards(self):
        table = make_uniform_table(100, 2, seed=5)
        with pytest.raises(InvalidParameterError):
            ShardedTable(table, 0)

    def test_zone_maps_are_tight(self):
        table = make_uniform_table(900, 2, seed=6)
        sharded = ShardedTable(table, 3)
        for shard in sharded.shards:
            for dim in range(table.n_columns):
                column = shard.table.column(dim)
                assert shard.zone_lo[dim] == column.min()
                assert shard.zone_hi[dim] == column.max()

    def test_sorted_data_tightens_shard_zones(self):
        # On x-sorted data the shard zone boxes partition the x range,
        # so each shard's box is strictly narrower than the global one.
        n = 900
        x = np.sort(np.random.default_rng(7).random(n) * 1000)
        y = np.random.default_rng(8).random(n)
        sharded = ShardedTable(Table([x, y]), 3)
        global_span = x.max() - x.min()
        for shard in sharded.shards:
            assert shard.zone_hi[0] - shard.zone_lo[0] < global_span / 2


class TestZonePruning:
    def make_sorted_sharded(self, n=1_200, shards=4):
        rng = np.random.default_rng(9)
        x = np.sort(rng.random(n) * 1000)
        y = rng.random(n) * 1000
        table = Table([x, y])
        index = ShardedIndex(table, gpkd_factory(), shards)
        return table, index

    def test_prune_skips_non_intersecting_shards(self):
        table, index = self.make_sorted_sharded()
        # A query inside shard 0's x-span cannot touch shards 1..3.
        hi = index.shards[0].zone_hi[0]
        lo = index.shards[0].zone_lo[0]
        query = RangeQuery([lo, 0.0], [(lo + hi) / 2, 1000.0])
        survivors, pruned = index.sharded.prune(query)
        assert pruned == 3
        assert [shard.shard_id for shard in survivors] == [0]
        stats = QueryStats()
        got = np.sort(index._execute(query, stats))
        assert stats.pruned == 3
        assert np.array_equal(got, reference_answer(table, query))

    def test_all_shards_survive_a_full_probe(self):
        _table, index = self.make_sorted_sharded()
        probe = RangeQuery([-np.inf] * 2, [np.inf] * 2)
        survivors, pruned = index.sharded.prune(probe)
        assert pruned == 0
        assert len(survivors) == index.sharded.n_shards


class TestShardedAnswers:
    """Scatter-gather answers are bit-identical to the unsharded serial
    index for every backend (the acceptance claim)."""

    @pytest.mark.parametrize("backend", sorted(BACKENDS))
    def test_backend_matches_unsharded(self, backend):
        case = FuzzCase(
            seed=4, kind="duplicate", n_rows=1000, n_dims=2,
            n_queries=12, size_threshold=64, delta=0.25,
        )
        table, queries = build_workload(case)
        plain = make_backend(backend, table, case)
        sharded = ShardedIndex(
            table, lambda t: make_backend(backend, t, case), 3
        )
        for query in queries:
            want = np.sort(plain.query(query).row_ids)
            got = np.sort(sharded.query(query).row_ids)
            assert np.array_equal(got, want), backend
        assert shard_errors(sharded) == []

    def test_thread_scatter_matches_serial_scatter(self):
        case = FuzzCase(
            seed=5, kind="uniform", n_rows=2000, n_dims=2,
            n_queries=10, size_threshold=64, delta=0.25,
        )
        table, queries = build_workload(case)

        def run(workers):
            par_config.set_workers(workers)
            index = ShardedIndex(table, gpkd_factory(), 4)
            outs = []
            for query in queries:
                result = index.query(query)
                # Array order (not just set) must match: merge is in
                # shard order regardless of completion order.
                outs.append(tuple(result.row_ids.tolist()))
            return outs

        assert run(1) == run(4)

    def test_structural_errors_drives_shard_sweep(self):
        table = make_uniform_table(600, 2, seed=11)
        index = ShardedIndex(table, gpkd_factory(), 3)
        index.query(make_queries(table, 1, seed=12)[0])
        assert structural_errors(index) == []


class TestShardedRefinement:
    def drive(self, index, probe, limit=400):
        spins = 0
        while not index.converged and spins < limit:
            index.query(probe)
            spins += 1
        return spins

    def test_refine_step_splits_budget_across_shards(self):
        table = make_uniform_table(4_000, 2, seed=13)
        index = ShardedIndex(table, gpkd_factory(size_threshold=128), 4)
        probe = RangeQuery([-np.inf] * 2, [np.inf] * 2)
        # Finish creation so shards sit in the refinement phase.
        from repro.core.progressive_kdtree import REFINEMENT

        while index.phase != REFINEMENT and not index.converged:
            index.query(probe)
        refining = [
            inner for inner in index.indexes
            if getattr(inner, "phase", None) == REFINEMENT
        ]
        assert len(refining) > 1
        used = index._refine_step(2_000, probe, QueryStats())
        assert used > 0
        # Budget reached more than one shard.
        assert (
            sum(
                1 for inner in refining
                if inner.converged or inner.open_piece_count is not None
            )
            >= 2
        )
        self.drive(index, probe)
        assert index.converged
        assert shard_errors(index) == []

    def test_scheduler_converges_sharded_index(self):
        from repro.serve.locks import PieceSnapshotLock
        from repro.serve.scheduler import RefinementScheduler

        table = make_uniform_table(3_000, 2, seed=14)
        index = ShardedIndex(table, gpkd_factory(size_threshold=128), 3)
        probe = RangeQuery([-np.inf] * 2, [np.inf] * 2)
        # Queries drive creation; the scheduler only refines indexes in
        # the refinement phase (mirroring the serve layer, where shards
        # finish creation through the queries that touch them).
        from repro.core.progressive_kdtree import REFINEMENT

        while index.phase != REFINEMENT and not index.converged:
            index.query(probe)
        scheduler = RefinementScheduler(slice_rows=4_096, idle_seconds=0.005)
        try:
            assert scheduler._refinable(index) or index.converged
            scheduler.register("t", "k", index, PieceSnapshotLock(name="k"))
            import time

            deadline = time.time() + 30.0
            while not index.converged and time.time() < deadline:
                scheduler.poke()
                time.sleep(0.01)
        finally:
            scheduler.close()
        assert index.converged
        assert scheduler.slices_run > 0
        assert shard_errors(index) == []
        got = np.sort(index.query(probe).row_ids)
        assert np.array_equal(got, np.arange(table.n_rows))


class TestShardInvariants:
    """I10: tampering with the shard partition is detected."""

    def make_index(self):
        table = make_uniform_table(600, 2, seed=15)
        return ShardedIndex(table, gpkd_factory(), 3)

    def test_clean_index_has_no_errors(self):
        assert shard_errors(self.make_index()) == []

    def test_non_sharded_index_is_skipped(self):
        table = make_uniform_table(100, 2, seed=16)
        assert shard_errors(AdaptiveKDTree(table, size_threshold=32)) == []

    def test_offset_tamper_detected(self):
        index = self.make_index()
        index.shards[1].row_offset += 7
        problems = shard_errors(index)
        assert any("tile" in problem for problem in problems)

    def test_zone_tamper_detected(self):
        index = self.make_index()
        shard = index.shards[0]
        shard.zone_hi = tuple(value / 2 for value in shard.zone_hi)
        problems = shard_errors(index)
        assert any("zone" in problem for problem in problems)

    def test_column_desync_detected(self):
        index = self.make_index()
        # Replace a shard view with different values: the shard no
        # longer holds its base row range.
        shard = index.shards[2]
        columns = shard.table.columns()
        columns[0] = columns[0] + 1.0
        shard.table._columns = columns
        problems = shard_errors(index)
        assert any("does not hold base rows" in problem for problem in problems)

    def test_inner_breach_is_attributed_to_its_shard(self):
        index = self.make_index()
        probe = RangeQuery([-np.inf] * 2, [np.inf] * 2)
        index.query(probe)
        inner = index.indexes[1]
        # Corrupt the inner index table so alignment (I5) breaks.
        inner.index_table.rowids[:5] = 0
        problems = shard_errors(index)
        assert problems
        assert all(problem.startswith("shard 1:") for problem in problems)

    def test_self_check_raises_on_breach(self):
        from repro.errors import InvariantViolationError

        index = self.make_index()
        index.shards[1].row_offset += 3
        with pytest.raises(InvariantViolationError):
            index.self_check()
