"""Adaptive Table Partitioning (paper future work)."""

import numpy as np
import pytest

from repro import (
    AdaptiveKDTree,
    AdaptiveTablePartitioner,
    InvalidParameterError,
    InvalidTableError,
    RangeQuery,
    Table,
)
from tests.conftest import make_queries, make_uniform_table, reference_answer


@pytest.fixture
def table_with_payload():
    rng = np.random.default_rng(6)
    n = 2_500
    dims = [rng.random(n) * 100 for _ in range(2)]
    payloads = [rng.random(n) * 10, np.arange(n, dtype=float)]
    return Table(dims + payloads, names=["x", "y", "weight", "serial"])


def dim_queries(table, n, seed=7):
    projected = table.project([0, 1])
    return make_queries(projected, n, width_fraction=0.25, seed=seed)


class TestCorrectness:
    def test_answers_match_reference(self, table_with_payload):
        partitioner = AdaptiveTablePartitioner(
            table_with_payload, dimension_positions=[0, 1], size_threshold=32
        )
        projected = table_with_payload.project([0, 1])
        for query in dim_queries(table_with_payload, 15):
            got = np.sort(partitioner.query(query).row_ids)
            want = reference_answer(projected, query)
            assert np.array_equal(got, want)

    def test_all_columns_as_dimensions(self):
        table = make_uniform_table(1_500, 3, seed=8)
        partitioner = AdaptiveTablePartitioner(table, size_threshold=32)
        for query in make_queries(table, 10, seed=9):
            got = np.sort(partitioner.query(query).row_ids)
            want = reference_answer(table, query)
            assert np.array_equal(got, want)

    def test_tree_validates(self, table_with_payload):
        partitioner = AdaptiveTablePartitioner(
            table_with_payload, dimension_positions=[0, 1], size_threshold=32
        )
        for query in dim_queries(table_with_payload, 8):
            partitioner.query(query)
        partitioner.tree.validate(
            [partitioner.storage(0), partitioner.storage(1)]
        )


class TestPayloadCoherence:
    def test_rows_stay_aligned(self, table_with_payload):
        partitioner = AdaptiveTablePartitioner(
            table_with_payload, dimension_positions=[0, 1], size_threshold=32
        )
        for query in dim_queries(table_with_payload, 10):
            partitioner.query(query)
        # The 'serial' payload equals the original row position, so after
        # any amount of reorganisation storage[serial] must equal rowids.
        serial = partitioner.storage(3)
        assert np.array_equal(serial.astype(int), partitioner.row_ids_in_order())

    def test_fetch_reads_partitioned_payload(self, table_with_payload):
        partitioner = AdaptiveTablePartitioner(
            table_with_payload, dimension_positions=[0, 1], size_threshold=32
        )
        query = dim_queries(table_with_payload, 1)[0]
        result = partitioner.partitioned_query(query)
        direct = result.fetch(2)
        via_rowids = table_with_payload.column(2)[result.row_ids]
        assert np.allclose(np.sort(direct), np.sort(via_rowids))

    def test_payload_movement_is_charged(self, table_with_payload):
        wide = AdaptiveTablePartitioner(
            table_with_payload, dimension_positions=[0, 1], size_threshold=32
        )
        narrow = AdaptiveKDTree(
            table_with_payload.project([0, 1]), size_threshold=32
        )
        query = dim_queries(table_with_payload, 1)[0]
        wide_cost = wide.query(query).stats.copied
        narrow_cost = narrow.query(query).stats.copied
        assert wide_cost > narrow_cost  # payload columns move too


class TestResultRuns:
    def test_runs_compress_contiguous_positions(self, table_with_payload):
        partitioner = AdaptiveTablePartitioner(
            table_with_payload, dimension_positions=[0, 1], size_threshold=32
        )
        queries = dim_queries(table_with_payload, 6)
        for query in queries:
            partitioner.query(query)
        result = partitioner.partitioned_query(queries[0])
        runs = partitioner.result_runs(result.positions)
        covered = sum(end - start for start, end in runs)
        assert covered == result.count
        for (s0, e0), (s1, e1) in zip(runs, runs[1:]):
            assert e0 < s1  # disjoint, ordered

    def test_empty_runs(self, table_with_payload):
        partitioner = AdaptiveTablePartitioner(
            table_with_payload, dimension_positions=[0, 1]
        )
        assert partitioner.result_runs(np.empty(0, dtype=np.int64)) == []

    def test_partitioning_increases_contiguity(self):
        # After adaptation, a repeated query's answer occupies fewer runs
        # than the same answer over the unorganised table would.
        table = make_uniform_table(4_000, 2, seed=10)
        partitioner = AdaptiveTablePartitioner(table, size_threshold=64)
        query = make_queries(table, 1, width_fraction=0.2, seed=11)[0]
        result = partitioner.partitioned_query(query)
        runs = partitioner.result_runs(result.positions)
        assert len(runs) < max(1, result.count // 2)


class TestValidation:
    def test_rejects_bad_dimension_positions(self, table_with_payload):
        with pytest.raises(InvalidTableError):
            AdaptiveTablePartitioner(table_with_payload, dimension_positions=[0, 9])
        with pytest.raises(InvalidTableError):
            AdaptiveTablePartitioner(table_with_payload, dimension_positions=[0, 0])
        with pytest.raises(InvalidTableError):
            AdaptiveTablePartitioner(table_with_payload, dimension_positions=[])

    def test_rejects_bad_threshold(self, table_with_payload):
        with pytest.raises(InvalidParameterError):
            AdaptiveTablePartitioner(table_with_payload, size_threshold=0)

    def test_storage_before_query_rejected(self, table_with_payload):
        partitioner = AdaptiveTablePartitioner(table_with_payload)
        with pytest.raises(InvalidTableError):
            partitioner.storage(0)

    def test_query_dimension_arity(self, table_with_payload):
        partitioner = AdaptiveTablePartitioner(
            table_with_payload, dimension_positions=[0, 1]
        )
        from repro import InvalidQueryError

        with pytest.raises(InvalidQueryError):
            partitioner.query(RangeQuery([0.0], [1.0]))
