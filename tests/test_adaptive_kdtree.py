"""Adaptive KD-Tree: cracking behaviour, minimal refinement, tau handling."""

import numpy as np
import pytest

from repro import (
    AdaptiveKDTree,
    CostModel,
    FullScan,
    InvalidParameterError,
    MachineProfile,
    RangeQuery,
)
from repro.workloads.patterns import sequential_queries, uniform_queries
from tests.conftest import assert_correct, make_queries, make_uniform_table


class TestCorrectness:
    def test_uniform(self, small_table, small_queries):
        index = AdaptiveKDTree(small_table, size_threshold=64)
        assert_correct(index, small_table, small_queries)

    def test_duplicates(self, duplicate_table):
        queries = make_queries(duplicate_table, 20, width_fraction=0.3, seed=1)
        index = AdaptiveKDTree(duplicate_table, size_threshold=32)
        assert_correct(index, duplicate_table, queries)

    def test_constant_column(self, constant_column_table):
        queries = [
            RangeQuery([10.0, 40.0, 10.0], [60.0, 50.0, 60.0]),
            RangeQuery([0.0, 42.0, 0.0], [99.0, 99.0, 99.0]),  # low == value
            RangeQuery([0.0, 0.0, 0.0], [99.0, 41.0, 99.0]),  # excludes all
        ]
        index = AdaptiveKDTree(constant_column_table, size_threshold=32)
        assert_correct(index, constant_column_table, queries)

    def test_repeated_identical_query(self, small_table, small_queries):
        index = AdaptiveKDTree(small_table, size_threshold=64)
        first = np.sort(index.query(small_queries[0]).row_ids)
        for _ in range(3):
            again = np.sort(index.query(small_queries[0]).row_ids)
            assert np.array_equal(first, again)

    def test_tree_validates_after_every_query(self, small_table, small_queries):
        index = AdaptiveKDTree(small_table, size_threshold=64)
        for query in small_queries[:8]:
            index.query(query)
            index.tree.validate(index.index_table.columns)

    def test_tiny_table(self):
        table = make_uniform_table(10, 2, seed=0)
        queries = make_queries(table, 5, width_fraction=0.5, seed=1)
        assert_correct(AdaptiveKDTree(table, size_threshold=4), table, queries)


class TestAdaptationBehaviour:
    def test_initializes_on_first_query(self, small_table, small_queries):
        index = AdaptiveKDTree(small_table, size_threshold=64)
        assert index.index_table is None
        stats = index.query(small_queries[0]).stats
        assert index.index_table is not None
        assert stats.phase_seconds["initialization"] > 0.0
        # Initialization copies the whole table (d columns + rowids).
        assert stats.copied >= small_table.n_rows * small_table.n_columns

    def test_adaptation_uses_predicates_as_pivots(self, small_table):
        index = AdaptiveKDTree(small_table, size_threshold=64)
        query = RangeQuery([100.0, 200.0, 300.0], [900.0, 800.0, 700.0])
        index.query(query)
        keys = set()
        stack = [index.tree.root]
        while stack:
            node = stack.pop()
            if not node.is_leaf():
                keys.add((node.dim, node.key))
                stack.extend([node.left, node.right])
        # All first-query pivots come from the query bounds.
        expected = {(d, v) for d, v in query.adaptation_pairs()}
        assert keys <= expected
        assert keys  # and some adaptation happened

    def test_minimal_indexing_leaves_cold_regions_coarse(self, small_table):
        # Only pieces that may answer the query get refined: a second
        # query far away from the first forces fresh adaptation.
        index = AdaptiveKDTree(small_table, size_threshold=16)
        span = small_table.n_rows
        low_query = RangeQuery([0.0] * 3, [span * 0.05] * 3)
        high_query = RangeQuery([span * 0.9] * 3, [span * 0.95] * 3)
        index.query(low_query)
        nodes_after_first = index.node_count
        stats = index.query(high_query).stats
        assert stats.nodes_created > 0
        assert index.node_count > nodes_after_first

    def test_size_threshold_respected(self, small_table, small_queries):
        index = AdaptiveKDTree(small_table, size_threshold=256)
        for query in small_queries:
            index.query(query)
        # No split may produce pieces from a parent at or below threshold,
        # i.e. every internal node's range was above the threshold.
        stack = [index.tree.root]
        while stack:
            node = stack.pop()
            if not node.is_leaf():
                assert node.size > 256
                stack.extend([node.left, node.right])

    def test_never_converges_flag_without_full_refinement(
        self, small_table, small_queries
    ):
        index = AdaptiveKDTree(small_table, size_threshold=64)
        for query in small_queries[:3]:
            index.query(query)
        assert not index.converged

    def test_sequential_workload_degenerates_tree(self):
        # The paper's AKD worst case: the KD-Tree approaches a linked list.
        table = make_uniform_table(4_000, 2, seed=20)
        queries = sequential_queries(table, 40, 0.0005, seed=21)
        index = AdaptiveKDTree(table, size_threshold=16)
        for query in queries:
            index.query(query)
        height = index.tree.height()
        assert height > 25  # close to one level per query bound

    def test_uniform_workload_stays_shallow(self):
        table = make_uniform_table(4_000, 2, seed=22)
        queries = uniform_queries(table, 40, 0.01, seed=23)
        index = AdaptiveKDTree(table, size_threshold=16)
        for query in queries:
            index.query(query)
        assert index.tree.height() < 40

    def test_adaptation_work_shrinks_over_time(self, small_table):
        queries = make_queries(small_table, 40, width_fraction=0.1, seed=30)
        index = AdaptiveKDTree(small_table, size_threshold=64)
        works = [index.query(q).stats.indexing_work for q in queries]
        assert sum(works[20:]) < sum(works[:20])


class TestInteractivityThreshold:
    def _model(self, table):
        return CostModel(
            MachineProfile.deterministic(), table.n_rows, table.n_columns
        )

    def test_preprocesses_when_scan_exceeds_tau(self):
        table = make_uniform_table(20_000, 3, seed=31)
        model = self._model(table)
        tau = model.full_scan_seconds() / 4
        index = AdaptiveKDTree(table, size_threshold=64, tau=tau, cost_model=model)
        queries = make_queries(table, 5, seed=32)
        first = index.query(queries[0]).stats
        assert first.nodes_created > 0
        # After pre-processing, every piece scans under tau.
        for leaf in index.tree.iter_leaves():
            assert model.scan_seconds(leaf.size * table.n_columns) <= tau

    def test_no_preprocessing_when_scan_fits(self):
        table = make_uniform_table(2_000, 3, seed=33)
        model = self._model(table)
        tau = model.full_scan_seconds() * 10
        index = AdaptiveKDTree(table, size_threshold=64, tau=tau, cost_model=model)
        query = RangeQuery([0.0] * 3, [1.0] * 3)
        stats = index.query(query).stats
        # Only the query's own pivots (if any) — no mean-pivot pre-build.
        keys_from_query = {v for _, v in query.adaptation_pairs()}
        stack = [index.tree.root]
        while stack:
            node = stack.pop()
            if not node.is_leaf():
                assert node.key in keys_from_query
                stack.extend([node.left, node.right])

    def test_correct_with_preprocessing(self):
        table = make_uniform_table(5_000, 2, seed=34)
        model = self._model(table)
        index = AdaptiveKDTree(
            table,
            size_threshold=32,
            tau=model.full_scan_seconds() / 8,
            cost_model=model,
        )
        assert_correct(index, table, make_queries(table, 10, seed=35))

    def test_invalid_parameters(self, small_table):
        with pytest.raises(InvalidParameterError):
            AdaptiveKDTree(small_table, size_threshold=0)
        with pytest.raises(InvalidParameterError):
            AdaptiveKDTree(small_table, tau=-1.0)


class TestVsFullScan:
    def test_total_work_beats_fullscan_on_repetitive_workload(self):
        table = make_uniform_table(8_000, 2, seed=40)
        rng_queries = make_queries(table, 60, width_fraction=0.05, seed=41)
        akd = AdaptiveKDTree(table, size_threshold=64)
        fs = FullScan(table)
        akd_work = sum(akd.query(q).stats.work for q in rng_queries)
        fs_work = sum(fs.query(q).stats.work for q in rng_queries)
        assert akd_work < fs_work


class TestHighDimensional:
    def test_sixteen_dims(self):
        table = make_uniform_table(800, 16, seed=7)
        queries = make_queries(table, 6, width_fraction=0.6, seed=8)
        assert_correct(AdaptiveKDTree(table, size_threshold=64), table, queries)

    def test_adaptation_pairs_cover_all_dims(self):
        table = make_uniform_table(1_000, 5, seed=9)
        index = AdaptiveKDTree(table, size_threshold=16)
        query = make_queries(table, 1, width_fraction=0.5, seed=10)[0]
        index.query(query)
        dims_split = set()
        stack = [index.tree.root]
        while stack:
            node = stack.pop()
            if not node.is_leaf():
                dims_split.add(node.dim)
                stack.extend([node.left, node.right])
        assert dims_split == set(range(5))
