"""Report rendering."""

import os

from repro.bench.report import format_series, format_table, save_report


class TestFormatTable:
    def test_basic_layout(self):
        text = format_table("Title", ["a", "bb"], [[1, 2.5], ["x", None]])
        lines = text.splitlines()
        assert lines[0] == "Title"
        assert lines[1] == "=" * 5
        assert "a" in lines[2] and "bb" in lines[2]
        assert "-" in lines[3]
        assert "2.5000" in text
        assert "-" in lines[-1]  # None renders as dash

    def test_scientific_for_tiny_values(self):
        text = format_table("T", ["v"], [[0.0000001]])
        assert "e-07" in text

    def test_scientific_for_huge_values(self):
        text = format_table("T", ["v"], [[123456.0]])
        assert "e+05" in text

    def test_zero_renders_plainly(self):
        assert "0" in format_table("T", ["v"], [[0.0]])

    def test_bool_rendering(self):
        text = format_table("T", ["v"], [[True], [False]])
        assert "yes" in text and "no" in text

    def test_precision_control(self):
        text = format_table("T", ["v"], [[1.23456]], precision=2)
        assert "1.23" in text
        assert "1.2346" not in text

    def test_alignment_consistent(self):
        text = format_table("T", ["col"], [[1], [22], [333]])
        rows = text.splitlines()[4:]
        assert len({len(row) for row in rows}) == 1


class TestFormatSeries:
    def test_columns_per_series(self):
        text = format_series(
            "Fig", "q", [1, 2, 3], [("A", [0.1, 0.2, 0.3]), ("B", [1.0, 2.0, 3.0])]
        )
        header = text.splitlines()[2]
        assert "q" in header and "A" in header and "B" in header

    def test_short_series_padded_with_dash(self):
        text = format_series("Fig", "q", [1, 2], [("A", [0.5])])
        assert text.splitlines()[-1].strip().endswith("-")


class TestSaveReport:
    def test_creates_directories(self, tmp_path):
        path = str(tmp_path / "nested" / "dir" / "report.txt")
        save_report(path, "hello")
        with open(path) as handle:
            assert handle.read() == "hello\n"

    def test_keeps_trailing_newline(self, tmp_path):
        path = str(tmp_path / "r.txt")
        save_report(path, "line\n")
        with open(path) as handle:
            assert handle.read() == "line\n"

    def test_bare_filename(self, tmp_path):
        os.chdir(tmp_path)
        save_report("report.txt", "x")
        assert os.path.exists("report.txt")
