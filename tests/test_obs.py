"""The observability layer: spans, metrics registry, and the hot-path hooks.

Covers the contract of :mod:`repro.obs` end to end:

* the no-op tracer emits nothing and installs no global state;
* every backend produces one ``query`` span per query and one ``phase``
  span per PhaseTimer activation, correctly parented;
* kernel spans are tagged with the active backend name;
* the partition/split instant events fire;
* the metrics registry (counters/gauges/histograms, labels, snapshot and
  diff semantics) behaves, and the instrumented layers feed it.
"""

from __future__ import annotations

import numpy as np
import pytest

import repro.obs as obs
from repro import kernels
from repro.bench.harness import INDEX_FACTORIES, make_index
from repro.core.metrics import PHASES, QueryStats
from repro.core.partition import IncrementalPartition
from repro.errors import InvalidParameterError
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from repro.obs.metrics import MetricsRegistry, diff
from repro.obs.sink import ListSink

from .conftest import make_queries, make_uniform_table


@pytest.fixture(autouse=True)
def obs_off():
    """Every test starts and ends with observability fully off."""
    obs.disable()
    obs.REGISTRY.reset()
    yield
    obs.disable()
    obs.REGISTRY.reset()


def spans(records, name=None):
    found = [r for r in records if r["type"] == "span"]
    if name is not None:
        found = [r for r in found if r["name"] == name]
    return found


def events(records, name=None):
    found = [r for r in records if r["type"] == "event"]
    if name is not None:
        found = [r for r in found if r["name"] == name]
    return found


# ---------------------------------------------------------------- no-op path


class TestDisabled:
    def test_flags_default_off(self):
        assert obs_trace.ENABLED is False
        assert obs_trace.TRACER is None
        assert obs_metrics.ENABLED is False
        assert obs.enabled() is False

    def test_queries_emit_nothing_when_disabled(self):
        table = make_uniform_table(500, 2, seed=11)
        index = make_index("AKD", table, size_threshold=64)
        for query in make_queries(table, 5, seed=12):
            index.query(query)
        assert obs_trace.TRACER is None
        assert len(obs.REGISTRY) == 0

    def test_capturing_scopes_the_tracer(self):
        with obs.capturing() as records:
            assert obs_trace.ENABLED is True
        assert obs_trace.ENABLED is False
        assert obs_trace.TRACER is None
        # Nothing was traced, so only the meta header is in the sink.
        assert all(r["type"] == "meta" for r in records)

    def test_enable_disable_idempotent(self):
        obs.enable()
        obs.enable()  # re-enable replaces the tracer, no leak
        assert obs_trace.ENABLED is True
        obs.disable()
        obs.disable()
        assert obs_trace.ENABLED is False


# ------------------------------------------------------------------- spans


class TestSpans:
    def test_meta_record_first(self):
        with obs.capturing(meta={"marker": "xyz"}) as records:
            pass
        assert records[0]["type"] == "meta"
        assert records[0]["version"] == 1
        assert records[0]["meta"]["marker"] == "xyz"
        assert "timestamp" in records[0]["meta"]
        assert "kernels" in records[0]["meta"]

    @pytest.mark.parametrize("name", sorted(INDEX_FACTORIES))
    def test_span_per_phase_per_query_all_backends(self, name):
        table = make_uniform_table(600, 2, seed=21)
        index = make_index(name, table, size_threshold=64)
        queries = make_queries(table, 4, seed=22)
        with obs.capturing(metrics=False) as records:
            for query in queries:
                index.query(query)
        query_spans = spans(records, "query")
        assert len(query_spans) == len(queries)
        for position, span in enumerate(query_spans):
            assert span["attrs"]["index"] == index.name
            assert span["attrs"]["query_number"] == position
            assert span["parent"] is None
            assert "result_count" in span["attrs"]
            assert "converged" in span["attrs"]
        # Every phase span is parented to a query span, its phase is one
        # of the four Fig. 6c phases, and every query owns at least one.
        ids = {span["id"] for span in query_spans}
        phase_spans = spans(records, "phase")
        assert phase_spans, f"{name} emitted no phase spans"
        owners = set()
        for span in phase_spans:
            assert span["attrs"]["phase"] in PHASES
            assert span["parent"] in ids
            owners.add(span["parent"])
        assert owners == ids

    def test_phase_span_durations_match_stats(self):
        table = make_uniform_table(800, 2, seed=23)
        index = make_index("AKD", table, size_threshold=64)
        (query,) = make_queries(table, 1, seed=24)
        with obs.capturing(metrics=False) as records:
            result = index.query(query)
        phase_spans = spans(records, "phase")
        by_phase = {}
        for span in phase_spans:
            phase = span["attrs"]["phase"]
            by_phase[phase] = by_phase.get(phase, 0.0) + span["dur"]
        for phase, total in by_phase.items():
            assert total == pytest.approx(
                result.stats.phase_seconds[phase], rel=0.5, abs=5e-3
            )

    def test_query_span_counter_deltas(self):
        table = make_uniform_table(800, 2, seed=25)
        index = make_index("AKD", table, size_threshold=64)
        (query,) = make_queries(table, 1, seed=26)
        with obs.capturing(metrics=False) as records:
            result = index.query(query)
        (span,) = spans(records, "query")
        counters = span.get("counters", {})
        assert counters.get("scanned", 0) == result.stats.scanned
        assert counters.get("copied", 0) == result.stats.copied

    def test_error_annotated_on_failing_query(self):
        table = make_uniform_table(200, 2, seed=27)
        index = make_index("AKD", table, size_threshold=64)

        def boom(query, stats):
            raise RuntimeError("injected")

        index._execute = boom
        (query,) = make_queries(table, 1, seed=28)
        with obs.capturing(metrics=False) as records:
            with pytest.raises(RuntimeError, match="injected"):
                index.query(query)
        (span,) = spans(records, "query")
        assert span["attrs"]["error"] == "RuntimeError"

    def test_numpy_scalars_coerced_in_attrs(self):
        with obs.capturing(metrics=False) as records:
            with obs_trace.TRACER.span("x", value=np.int64(7)):
                pass
        (span,) = spans(records, "x")
        assert span["attrs"]["value"] == 7
        assert type(span["attrs"]["value"]) is int


class TestKernelSpans:
    @pytest.mark.parametrize("backend", ["numpy", "reference"])
    def test_kernel_spans_tag_active_backend(self, backend):
        previous = kernels.active_name()
        try:
            kernels.use(backend)
            table = make_uniform_table(500, 2, seed=31)
            index = make_index("AKD", table, size_threshold=64)
            queries = make_queries(table, 3, seed=32)
            with obs.capturing(metrics=False) as records:
                for query in queries:
                    index.query(query)
            kernel_spans = spans(records, "kernel")
            assert kernel_spans, "no kernel spans recorded"
            assert {s["attrs"]["backend"] for s in kernel_spans} == {backend}
            assert {s["attrs"]["op"] for s in kernel_spans} <= {
                "range_scan", "stable_partition"
            }
            for span in kernel_spans:
                assert span["parent"] is not None
        finally:
            kernels.use(previous)

    def test_kernel_latency_histogram_fed(self):
        table = make_uniform_table(500, 2, seed=33)
        index = make_index("AKD", table, size_threshold=64)
        (query,) = make_queries(table, 1, seed=34)
        with obs.capturing(metrics=True):
            index.query(query)
        backend = kernels.active_name()
        histogram = obs.REGISTRY.histogram(
            "kernel.range_scan.seconds", backend=backend
        )
        assert histogram.count > 0
        assert histogram.total > 0.0


class TestEvents:
    def test_partition_lifecycle_events(self):
        rng = np.random.default_rng(41)
        keys = rng.random(400)
        arrays = [keys, np.arange(400, dtype=np.int64)]
        with obs.capturing(metrics=False) as records:
            job = IncrementalPartition(arrays, 0, 400, 0, 0.5)
            while not job.done:
                job.advance(50)
        starts = events(records, "partition.start")
        assert len(starts) == 1
        assert starts[0]["attrs"]["rows"] == 400
        assert starts[0]["attrs"]["pivot"] == 0.5
        pauses = events(records, "partition.pause")
        resumes = events(records, "partition.resume")
        completes = events(records, "partition.complete")
        assert len(completes) == 1
        assert completes[0]["attrs"]["split"] == job.split
        # Every pause was answered by a resume before completion.
        assert len(resumes) == len(pauses)

    def test_split_events_match_nodes_created(self):
        table = make_uniform_table(600, 2, seed=42)
        index = make_index("AKD", table, size_threshold=64)
        queries = make_queries(table, 4, seed=43)
        with obs.capturing(metrics=False) as records:
            stats = QueryStats()
            for query in queries:
                stats.merge(index.query(query).stats)
        splits = events(records, "split")
        assert len(splits) == stats.nodes_created
        for event in splits:
            attrs = event["attrs"]
            assert attrs["start"] < attrs["split"] < attrs["end"]
            assert attrs["left_size"] + attrs["right_size"] == (
                attrs["end"] - attrs["start"]
            )


# ------------------------------------------------------------------ metrics


class TestMetricsRegistry:
    def test_counter_get_or_create(self):
        registry = MetricsRegistry()
        counter = registry.counter("hits", index="AKD")
        counter.inc()
        counter.inc(2)
        assert registry.counter("hits", index="AKD") is counter
        assert counter.value == 3
        assert registry.names() == ["hits{index=AKD}"]

    def test_counter_rejects_negative(self):
        with pytest.raises(InvalidParameterError):
            MetricsRegistry().counter("hits").inc(-1)

    def test_label_order_is_canonical(self):
        registry = MetricsRegistry()
        a = registry.counter("x", b=1, a=2)
        b = registry.counter("x", a=2, b=1)
        assert a is b
        assert registry.names() == ["x{a=2,b=1}"]

    def test_kind_mismatch_raises(self):
        registry = MetricsRegistry()
        registry.counter("m")
        with pytest.raises(InvalidParameterError, match="counter"):
            registry.gauge("m")

    def test_gauge_last_write_wins(self):
        gauge = MetricsRegistry().gauge("depth")
        gauge.set(5)
        gauge.set(2)
        assert gauge.snapshot() == 2

    def test_histogram_buckets_and_stats(self):
        histogram = MetricsRegistry().histogram("lat")
        for value in (5e-7, 5e-4, 5e-4, 100.0):
            histogram.observe(value)
        snap = histogram.snapshot()
        assert snap["count"] == 4
        assert snap["min"] == 5e-7
        assert snap["max"] == 100.0
        assert snap["buckets"]["+inf"] == 1  # the 100s outlier
        assert snap["buckets"][repr(1e-3)] == 2
        assert histogram.mean == pytest.approx(snap["sum"] / 4)

    def test_snapshot_diff_window(self):
        registry = MetricsRegistry()
        registry.counter("n").inc(5)
        before = registry.snapshot()
        registry.counter("n").inc(3)
        registry.histogram("h").observe(0.5)
        delta = diff(before, registry.snapshot())
        assert delta["n"] == 3
        assert delta["h"]["count"] == 1
        # Unchanged keys are dropped from the window view.
        registry.counter("quiet").inc(0)
        assert "quiet" not in diff(registry.snapshot(), registry.snapshot())

    def test_index_feeds_registry(self):
        table = make_uniform_table(600, 2, seed=51)
        index = make_index("GPKD", table, size_threshold=64, delta=0.3)
        queries = make_queries(table, 5, seed=52)
        obs_metrics.enable()
        try:
            for query in queries:
                index.query(query)
        finally:
            obs_metrics.disable()
        registry = obs.REGISTRY
        assert registry.counter("index.queries", index="GPKD").value == 5
        assert registry.counter("index.scanned", index="GPKD").value > 0
        assert registry.histogram("query.seconds", index="GPKD").count == 5
        assert registry.gauge("index.nodes", index="GPKD").value == index.node_count

    def test_metrics_without_tracing(self):
        """metrics can meter alone — no tracer, no span records."""
        table = make_uniform_table(400, 2, seed=53)
        index = make_index("AKD", table, size_threshold=64)
        obs_metrics.enable()
        try:
            for query in make_queries(table, 2, seed=54):
                index.query(query)
        finally:
            obs_metrics.disable()
        assert obs_trace.TRACER is None
        assert obs.REGISTRY.counter("index.queries", index="AKD").value == 2


class TestSessionAndHarness:
    def test_session_query_span_wraps_index_query(self):
        from repro import ExplorationSession

        rng = np.random.default_rng(61)
        session = ExplorationSession(size_threshold=64)
        session.register("t", {"x": rng.random(500), "y": rng.random(500)})
        with obs.capturing() as records:
            session.query("t", x=(0.1, 0.6), y=(0.2, 0.7))
        (wrapper,) = spans(records, "session.query")
        assert wrapper["attrs"]["table"] == "t"
        assert wrapper["attrs"]["columns"] == "x,y"
        (query_span,) = spans(records, "query")
        assert query_span["parent"] == wrapper["id"]
        assert obs.REGISTRY.counter("session.queries", table="t").value == 1

    def test_run_workload_trace_round_trip(self, tmp_path):
        from repro.bench.harness import run_workload
        from repro.obs.sink import read_trace
        from repro.workloads.patterns import make_synthetic_workload

        workload = make_synthetic_workload(
            "uniform", n_rows=2_000, n_dims=2, n_queries=6, seed=71
        )
        path = tmp_path / "run.jsonl"
        run = run_workload("AKD", workload, size_threshold=64, trace=str(path))
        assert run.n_queries == 6
        # Tracing is off again after the harness returns.
        assert obs_trace.ENABLED is False
        records = read_trace(path)
        assert records[0]["type"] == "meta"
        assert records[0]["meta"]["index"] == "AKD"
        assert records[0]["meta"]["workload"] == workload.name
        assert len(spans(records, "query")) == 6

    def test_fuzz_feeds_registry(self):
        from repro.fuzz import run_fuzz

        obs_metrics.enable()
        try:
            report = run_fuzz(
                seed=3, queries=4, rows=300, backends=["akd"],
                kinds=["uniform"], size_threshold=32,
                log=lambda line: None,
            )
        finally:
            obs_metrics.disable()
        assert report.cases_run == 1
        registry = obs.REGISTRY
        assert registry.counter("fuzz.cases", backend="akd", kind="uniform").value == 1
        assert registry.counter("fuzz.queries", backend="akd", kind="uniform").value == 4
