#!/usr/bin/env python
"""Re-record the work-unit regression baseline.

Run after an *intentional* algorithm change:

    python tests/data/make_baseline.py
"""

import os

from repro.bench.regression import record_baseline

PATH = os.path.join(os.path.dirname(__file__), "work_baseline.json")

if __name__ == "__main__":
    metrics = record_baseline(PATH)
    print(f"recorded {len(metrics)} metrics to {PATH}")
