"""ExplorationSession: the user-facing facade."""

import numpy as np
import pytest

from repro import (
    InvalidParameterError,
    InvalidQueryError,
    InvalidTableError,
)
from repro.session import ExplorationSession


@pytest.fixture
def data():
    rng = np.random.default_rng(80)
    n = 3_000
    cities = np.array(["ams", "ber", "cwb", "nyc"])[rng.integers(0, 4, n)]
    return {
        "lat": rng.random(n) * 90,
        "lon": rng.random(n) * 180,
        "fare": rng.random(n) * 60,
        "city": cities,
    }


@pytest.fixture
def session(data):
    session = ExplorationSession()
    session.register("taxi", data)
    return session


def brute(data, **bounds):
    n = len(data["lat"])
    keep = np.ones(n, dtype=bool)
    for column, (low, high) in bounds.items():
        keep &= (data[column] > low) & (data[column] <= high)
    return np.flatnonzero(keep)


class TestRegistration:
    def test_tables_listed(self, session):
        assert session.tables == ["taxi"]

    def test_duplicate_rejected(self, session, data):
        with pytest.raises(InvalidTableError):
            session.register("taxi", data)

    def test_unknown_table_rejected(self, session):
        with pytest.raises(InvalidTableError):
            session.query("nope", lat=(0.0, 1.0))

    def test_unknown_technique_rejected(self):
        with pytest.raises(InvalidParameterError):
            ExplorationSession(technique="magic")


class TestQueries:
    def test_numeric_query_correct(self, session, data):
        result = session.query("taxi", lat=(10.0, 50.0), lon=(20.0, 90.0))
        want = brute(data, lat=(10.0, 50.0), lon=(20.0, 90.0))
        assert np.array_equal(np.sort(result.row_ids), want)

    def test_string_column_query(self, session, data):
        result = session.query("taxi", city=("ams", "ber"), fare=(10.0, 40.0))
        mask = (data["city"] == "ber") & (data["fare"] > 10) & (data["fare"] <= 40)
        assert np.array_equal(np.sort(result.row_ids), np.flatnonzero(mask))

    def test_single_column_query(self, session, data):
        result = session.query("taxi", fare=(50.0, 60.0))
        want = brute(data, fare=(50.0, 60.0))
        assert np.array_equal(np.sort(result.row_ids), want)

    def test_keyword_order_irrelevant(self, session):
        first = session.query("taxi", lat=(10.0, 50.0), lon=(20.0, 90.0))
        second = session.query("taxi", lon=(20.0, 90.0), lat=(10.0, 50.0))
        assert np.array_equal(np.sort(first.row_ids), np.sort(second.row_ids))

    def test_repeated_queries_stay_correct(self, session, data):
        rng = np.random.default_rng(81)
        for _ in range(15):
            low = rng.random() * 60
            result = session.query("taxi", lat=(low, low + 20.0))
            want = brute(data, lat=(low, low + 20.0))
            assert np.array_equal(np.sort(result.row_ids), want)

    def test_empty_bounds_rejected(self, session):
        with pytest.raises(InvalidQueryError):
            session.query("taxi")

    def test_unknown_column_rejected(self, session):
        with pytest.raises(InvalidQueryError):
            session.query("taxi", altitude=(0.0, 1.0))

    def test_malformed_bound_rejected(self, session):
        with pytest.raises(InvalidQueryError):
            session.query("taxi", lat=5.0)


class TestResults:
    def test_fetch_decodes_strings(self, session):
        result = session.query("taxi", city=("ams", "ber"), fare=(0.0, 60.0))
        cities = result.fetch("city")
        assert set(cities.tolist()) <= {"ber"}

    def test_fetch_other_columns(self, session, data):
        result = session.query("taxi", lat=(10.0, 20.0))
        fares = result.fetch("fare")
        assert np.allclose(np.sort(fares), np.sort(data["fare"][result.row_ids]))

    def test_rows_materialisation(self, session):
        result = session.query("taxi", lat=(10.0, 20.0), fare=(0.0, 30.0))
        rows = result.rows()
        assert len(rows) == result.count
        if rows:
            assert len(rows[0]) == 2  # the queried columns, sorted

    def test_rows_custom_columns(self, session):
        result = session.query("taxi", lat=(10.0, 20.0))
        rows = result.rows(columns=["city", "fare"])
        if rows:
            assert isinstance(rows[0][0], str)

    def test_seconds_measured(self, session):
        assert session.query("taxi", lat=(0.0, 90.0)).seconds > 0


class TestIndexManagement:
    def test_one_index_per_group(self, session):
        session.query("taxi", lat=(0.0, 50.0))
        session.query("taxi", lat=(0.0, 50.0), lon=(0.0, 90.0))
        session.query("taxi", lon=(0.0, 90.0), lat=(0.0, 50.0))
        stats = session.stats("taxi")
        assert set(stats["column_groups"]) == {"lat", "lat, lon"}
        assert stats["queries_run"] == 3

    def test_auto_is_greedy(self, session):
        session.query("taxi", lat=(0.0, 50.0))
        stats = session.stats("taxi")
        assert (
            stats["column_groups"]["lat"]["technique"]
            == "GreedyProgressiveKDTree"
        )

    @pytest.mark.parametrize(
        "technique,expected",
        [
            ("adaptive", "AdaptiveKDTree"),
            ("progressive", "ProgressiveKDTree"),
            ("quasii", "Quasii"),
            ("scan", "FullScan"),
        ],
    )
    def test_explicit_techniques(self, data, technique, expected):
        session = ExplorationSession(technique=technique)
        session.register("taxi", data)
        result = session.query("taxi", lat=(10.0, 50.0))
        want = brute(data, lat=(10.0, 50.0))
        assert np.array_equal(np.sort(result.row_ids), want)
        assert (
            session.stats("taxi")["column_groups"]["lat"]["technique"]
            == expected
        )

    def test_stats_include_tree_summary(self, session):
        session.query("taxi", lat=(0.0, 50.0), lon=(0.0, 90.0))
        stats = session.stats("taxi")
        entry = stats["column_groups"]["lat, lon"]
        assert "nodes" in entry and "converged" in entry

    def test_repr(self, session):
        assert "taxi" in repr(session)


class TestSessionErrors:
    def test_stats_unknown_table(self, session):
        with pytest.raises(InvalidTableError):
            session.stats("nope")

    def test_fetch_unknown_column(self, session):
        result = session.query("taxi", lat=(0.0, 90.0))
        with pytest.raises(InvalidQueryError):
            result._session.fetch("taxi", "altitude", result.row_ids)

    def test_empty_result_rows(self, session):
        result = session.query("taxi", lat=(1e6, 2e6))
        assert result.count == 0
        assert result.rows() == []
