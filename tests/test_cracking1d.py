"""Standard uni-dimensional cracking substrate."""

import numpy as np
import pytest

from repro import CrackerColumn, InvalidTableError
from repro.core.metrics import QueryStats


@pytest.fixture
def keys():
    rng = np.random.default_rng(0)
    return rng.integers(0, 1_000, 5_000).astype(np.float64)


class TestCrack:
    def test_crack_partitions(self, keys):
        cracker = CrackerColumn(keys)
        boundary = cracker.crack(500.0)
        assert (cracker.keys[:boundary] <= 500.0).all()
        assert (cracker.keys[boundary:] > 500.0).all()

    def test_crack_is_idempotent(self, keys):
        cracker = CrackerColumn(keys)
        first = cracker.crack(500.0)
        again = cracker.crack(500.0)
        assert first == again
        assert cracker.n_cracks == 1

    def test_many_cracks_keep_invariant(self, keys):
        cracker = CrackerColumn(keys)
        rng = np.random.default_rng(1)
        for value in rng.integers(0, 1_000, 50):
            cracker.crack(float(value))
        cracker.validate()

    def test_crack_below_minimum(self, keys):
        cracker = CrackerColumn(keys)
        assert cracker.crack(-5.0) == 0

    def test_crack_above_maximum(self, keys):
        cracker = CrackerColumn(keys)
        assert cracker.crack(2_000.0) == keys.shape[0]

    def test_rowids_track_rows(self, keys):
        cracker = CrackerColumn(keys)
        cracker.crack(300.0)
        cracker.crack(700.0)
        assert np.array_equal(cracker.keys, keys[cracker.rowids])

    def test_stats_accumulate(self, keys):
        cracker = CrackerColumn(keys)
        stats = QueryStats()
        cracker.crack(500.0, stats)
        assert stats.copied > 0


class TestRangeQueries:
    def test_range_rowids_match_brute_force(self, keys):
        cracker = CrackerColumn(keys)
        got = np.sort(cracker.range_rowids(200.0, 600.0))
        want = np.flatnonzero((keys > 200.0) & (keys <= 600.0))
        assert np.array_equal(got, want)

    def test_many_ranges(self, keys):
        cracker = CrackerColumn(keys)
        rng = np.random.default_rng(2)
        for _ in range(30):
            low = float(rng.integers(0, 900))
            high = low + float(rng.integers(1, 100))
            got = np.sort(cracker.range_rowids(low, high))
            want = np.flatnonzero((keys > low) & (keys <= high))
            assert np.array_equal(got, want)
        cracker.validate()

    def test_range_positions_contiguous(self, keys):
        cracker = CrackerColumn(keys)
        start, end = cracker.range_positions(100.0, 200.0)
        window = cracker.keys[start:end]
        assert ((window > 100.0) & (window <= 200.0)).all()

    def test_empty_range(self, keys):
        cracker = CrackerColumn(keys)
        start, end = cracker.range_positions(500.0, 500.0)
        assert start == end

    def test_cracking_work_decreases(self, keys):
        cracker = CrackerColumn(keys)
        stats_first = QueryStats()
        cracker.range_rowids(100.0, 900.0, stats_first)
        stats_later = QueryStats()
        cracker.range_rowids(400.0, 500.0, stats_later)
        assert stats_later.copied < stats_first.copied


class TestValidation:
    def test_rejects_matrix_keys(self):
        with pytest.raises(InvalidTableError):
            CrackerColumn(np.ones((2, 2)))

    def test_custom_rowids(self):
        keys = np.array([3.0, 1.0, 2.0])
        rowids = np.array([30, 10, 20])
        cracker = CrackerColumn(keys, rowids)
        got = set(cracker.range_rowids(0.0, 2.0).tolist())
        assert got == {10, 20}
