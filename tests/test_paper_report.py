"""The all-in-one report generator (library-level, not via the CLI)."""

import pytest

from repro.bench.experiments import Scale
from repro.bench.paper_report import generate_report

TINY = Scale(
    n_small=2_000,
    n_large=3_000,
    n_queries=12,
    real_rows=2_000,
    real_queries=12,
    size_threshold=256,
)


@pytest.fixture(scope="module")
def report():
    return generate_report(TINY)


class TestGenerateReport:
    def test_contains_every_section(self, report):
        for marker in (
            "Table II", "Table III", "Table IV", "Table V", "Table VI",
            "Fig 5", "Fig 6a", "Fig 6b", "Fig 6c", "Fig 6d", "Fig 7",
        ):
            assert marker in report

    def test_mentions_scale(self, report):
        assert "N=2000/3000" in report

    def test_all_workloads_in_tables(self, report):
        for name in ("Unif(8)", "Seq(2)", "Shift(8)", "Genomics"):
            assert name in report

    def test_charts_rendered(self, report):
        assert report.count("|") > 50  # chart rows

    def test_tau_reference_line(self, report):
        assert "-=tau" in report
