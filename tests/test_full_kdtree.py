"""AvgKD / MedKD baselines: eager build, lookup correctness, balance."""

import numpy as np
import pytest

from repro import AverageKDTree, InvalidParameterError, MedianKDTree, Table
from repro.workloads.data import skewed_table
from tests.conftest import assert_correct, make_queries, make_uniform_table


@pytest.fixture(params=[AverageKDTree, MedianKDTree])
def index_class(request):
    return request.param


class TestCorrectness:
    def test_uniform(self, index_class, small_table, small_queries):
        index = index_class(small_table, size_threshold=64)
        assert_correct(index, small_table, small_queries)

    def test_duplicates(self, index_class, duplicate_table):
        queries = make_queries(duplicate_table, 15, width_fraction=0.3, seed=5)
        index = index_class(duplicate_table, size_threshold=32)
        assert_correct(index, duplicate_table, queries)

    def test_constant_column(self, index_class, constant_column_table):
        queries = make_queries(
            constant_column_table.project([0, 2]), 10, width_fraction=0.3, seed=6
        )
        # Re-expand queries to 3 dims: constant column matched fully.
        from repro import RangeQuery

        full_queries = [
            RangeQuery(
                [q.lows[0], 0.0, q.lows[1]], [q.highs[0], 100.0, q.highs[1]]
            )
            for q in queries
        ]
        index = index_class(constant_column_table, size_threshold=32)
        assert_correct(index, constant_column_table, full_queries)

    def test_skewed_data(self, index_class):
        table = skewed_table(2_000, 3, seed=9)
        queries = make_queries(table, 12, width_fraction=0.2, seed=10)
        assert_correct(index_class(table, size_threshold=64), table, queries)


class TestBuildBehaviour:
    def test_builds_on_first_query(self, index_class, small_table, small_queries):
        index = index_class(small_table, size_threshold=64)
        assert not index.converged
        assert index.tree is None
        first = index.query(small_queries[0])
        assert index.converged
        assert first.stats.phase_seconds["initialization"] > 0.0
        assert first.stats.nodes_created > 0

    def test_no_further_building(self, index_class, small_table, small_queries):
        index = index_class(small_table, size_threshold=64)
        index.query(small_queries[0])
        nodes = index.node_count
        for query in small_queries[1:]:
            stats = index.query(query).stats
            assert stats.nodes_created == 0
            assert stats.copied == 0
        assert index.node_count == nodes

    def test_first_query_dominates(self, index_class, small_table, small_queries):
        index = index_class(small_table, size_threshold=64)
        first = index.query(small_queries[0]).stats.work
        later = index.query(small_queries[1]).stats.work
        assert first > 10 * later

    def test_leaves_below_threshold(self, index_class, small_table, small_queries):
        index = index_class(small_table, size_threshold=128)
        index.query(small_queries[0])
        assert index.tree.max_leaf_size() <= 128

    def test_tree_validates(self, index_class, small_table, small_queries):
        index = index_class(small_table, size_threshold=128)
        index.query(small_queries[0])
        index.tree.validate(index.index_table.columns)

    def test_threshold_validated(self, index_class, small_table):
        with pytest.raises(InvalidParameterError):
            index_class(small_table, size_threshold=0)


class TestPivotStrategies:
    def test_median_build_costs_more_time_than_mean(self):
        # "finding the median of a piece is more costly than finding the
        # average" — compare wall-clock of the eager builds (min of three
        # runs each, to shrug off scheduler noise).
        table = make_uniform_table(30_000, 4, seed=3)
        queries = make_queries(table, 1, seed=4)
        avg_first = min(
            AverageKDTree(table, 512).query(queries[0]).stats.seconds
            for _ in range(3)
        )
        med_first = min(
            MedianKDTree(table, 512).query(queries[0]).stats.seconds
            for _ in range(3)
        )
        assert med_first > avg_first

    def test_median_is_balanced_on_skew(self):
        table = skewed_table(8_000, 2, seed=12)
        queries = make_queries(table, 1, seed=13)
        avg = AverageKDTree(table, 128)
        med = MedianKDTree(table, 128)
        avg.query(queries[0])
        med.query(queries[0])
        # Median pivots guarantee balance; mean pivots degrade on skew.
        assert med.tree.height() <= avg.tree.height()

    def test_same_answers_regardless_of_pivot(self, small_table, small_queries):
        avg = AverageKDTree(small_table, 64)
        med = MedianKDTree(small_table, 64)
        for query in small_queries:
            got_avg = np.sort(avg.query(query).row_ids)
            got_med = np.sort(med.query(query).row_ids)
            assert np.array_equal(got_avg, got_med)
