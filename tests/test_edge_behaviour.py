"""Cross-cutting edge behaviours: open-ended queries, dtypes, pruning."""

import numpy as np
import pytest

from repro import (
    AdaptiveKDTree,
    AverageKDTree,
    ProgressiveKDTree,
    Quasii,
    RangeQuery,
    Table,
)
from repro.core.metrics import QueryStats
from tests.conftest import (
    assert_correct,
    make_queries,
    make_uniform_table,
    reference_answer,
)


class TestOpenEndedQueries:
    """Semi-infinite predicates: one side of a dimension unbounded."""

    def queries(self, table):
        span = table.n_rows
        return [
            RangeQuery([-np.inf, 0.2 * span], [0.5 * span, np.inf]),
            RangeQuery([-np.inf, -np.inf], [0.3 * span, 0.3 * span]),
            RangeQuery([0.7 * span, -np.inf], [np.inf, np.inf]),
            RangeQuery([-np.inf, -np.inf], [np.inf, np.inf]),
        ]

    @pytest.mark.parametrize(
        "cls", [AdaptiveKDTree, ProgressiveKDTree, AverageKDTree, Quasii]
    )
    def test_correct(self, cls):
        table = make_uniform_table(1_500, 2, seed=110)
        if cls is ProgressiveKDTree:
            index = cls(table, delta=0.4, size_threshold=32)
        else:
            index = cls(table, size_threshold=32)
        assert_correct(index, table, self.queries(table) * 2)

    def test_adaptive_skips_infinite_pivots(self):
        table = make_uniform_table(1_500, 2, seed=111)
        index = AdaptiveKDTree(table, size_threshold=32)
        index.query(RangeQuery([-np.inf, -np.inf], [np.inf, np.inf]))
        assert index.node_count == 0  # no finite bounds, no pivots

    def test_unbounded_query_scans_nothing_extra(self):
        table = make_uniform_table(1_500, 2, seed=112)
        index = AdaptiveKDTree(table, size_threshold=32)
        stats = index.query(
            RangeQuery([-np.inf, -np.inf], [np.inf, np.inf])
        ).stats
        assert stats.scanned == 0  # no predicate needs checking


class TestFloat32Storage:
    def test_indexes_work_on_float32(self):
        rng = np.random.default_rng(113)
        table = Table(
            [rng.random(1_000) * 100 for _ in range(2)], dtype=np.float32
        )
        assert table.column(0).dtype == np.float32
        queries = make_queries(table, 10, width_fraction=0.3, seed=114)
        assert_correct(AdaptiveKDTree(table, size_threshold=32), table, queries)

    def test_progressive_preserves_dtype(self):
        rng = np.random.default_rng(115)
        table = Table([rng.random(800) * 100], dtype=np.float32)
        index = ProgressiveKDTree(table, delta=1.0, size_threshold=32)
        index.query(RangeQuery([10.0], [20.0]))
        assert index.index_table.columns[0].dtype == np.float32


class TestLookupPruning:
    def test_selective_lookup_visits_few_nodes(self):
        """A balanced tree prunes: a tiny query visits O(depth) nodes,
        not O(all nodes)."""
        table = make_uniform_table(8_000, 2, seed=116)
        index = AverageKDTree(table, size_threshold=64)
        wide = make_queries(table, 1, width_fraction=0.9, seed=117)[0]
        narrow = make_queries(table, 1, width_fraction=0.01, seed=118)[0]
        index.query(wide)  # build
        narrow_stats = index.query(narrow).stats
        wide_stats = index.query(wide).stats
        assert narrow_stats.lookup_nodes < wide_stats.lookup_nodes / 3
        assert narrow_stats.lookup_nodes < index.node_count / 3

    def test_scan_work_tracks_selectivity(self):
        table = make_uniform_table(8_000, 2, seed=119)
        index = AverageKDTree(table, size_threshold=64)
        narrow = make_queries(table, 1, width_fraction=0.02, seed=120)[0]
        wide = make_queries(table, 1, width_fraction=0.6, seed=121)[0]
        index.query(wide)
        assert index.query(narrow).stats.scanned < index.query(wide).stats.scanned / 5


class TestQueryPriorityRefinement:
    def test_progressive_refines_queried_region_first(self, request):
        """Repeating one query converges its region while a fresh region
        stays coarse — the 'pieces required for query processing' rule.

        A *serial*-scheduler property: the round-based parallel refiner
        intentionally spreads leftover budget onto non-queried pieces
        (see ``_pick_pieces``), so the strict ordering below only holds
        with fan-out pinned off — regardless of any ambient
        REPRO_PARALLEL / REPRO_PROCS environment.
        """
        from repro.parallel import config as par_config
        from repro.parallel import procpool

        workers, procs = par_config.get_workers(), procpool.get_process_workers()
        par_config.set_workers(1)
        procpool.set_process_workers(1)
        request.addfinalizer(lambda: par_config.set_workers(workers))
        request.addfinalizer(lambda: procpool.set_process_workers(procs))
        table = make_uniform_table(6_000, 2, seed=122)
        index = ProgressiveKDTree(table, delta=0.3, size_threshold=64)
        span = table.n_rows
        hot = RangeQuery([0.05 * span, 0.05 * span], [0.15 * span, 0.15 * span])
        for _ in range(16):  # creation (~4 queries) + enough refinement
            index.query(hot)
        stats = QueryStats()
        hot_pieces = index.tree.search(hot, stats)
        hot_max = max(match.piece.size for match in hot_pieces)
        cold = RangeQuery(
            [0.8 * span, 0.8 * span], [0.9 * span, 0.9 * span]
        )
        cold_pieces = index.tree.search(cold, QueryStats())
        cold_max = max(match.piece.size for match in cold_pieces)
        assert hot_max <= cold_max

    def test_quasii_levels_for_one_dimension(self):
        table = make_uniform_table(1_000, 1, seed=123)
        index = Quasii(table, size_threshold=64)
        assert index._levels == [64]
        queries = make_queries(table, 5, width_fraction=0.2, seed=124)
        assert_correct(index, table, queries)

    def test_quasii_level_thresholds_interpolate(self):
        table = make_uniform_table(10_000, 3, seed=125)
        index = Quasii(table, size_threshold=64)
        # s_1 = N^(2/3), s_2 = N^(1/3) (floored at the threshold), s_3 = t.
        assert index._levels[0] == pytest.approx(10_000 ** (2 / 3), rel=0.01)
        assert index._levels[1] == pytest.approx(
            max(64, 10_000 ** (1 / 3)), rel=0.01
        )
        assert index._levels[2] == 64


class TestRepeatedConvergedQueries:
    def test_converged_progressive_is_pure_lookup(self):
        table = make_uniform_table(2_000, 2, seed=126)
        index = ProgressiveKDTree(table, delta=1.0, size_threshold=64)
        queries = make_queries(table, 100, seed=127)
        for query in queries:
            index.query(query)
            if index.converged:
                break
        assert index.converged
        stats = index.query(queries[0]).stats
        assert stats.indexing_work == 0
        assert stats.phase_seconds["adaptation"] == 0.0
