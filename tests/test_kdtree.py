"""KD-Tree shell: splits, lookups, bounds bookkeeping, validation."""

import numpy as np
import pytest

from repro import RangeQuery
from repro.core.kdtree import KDTree
from repro.core.metrics import QueryStats
from repro.core.partition import stable_partition
from repro.errors import IndexStateError


def build_two_level_tree():
    """The paper's running example data, adapted: split on (A, 6), then the
    right side on (B, 5)."""
    a = np.array([6.0, 3.0, 16.0, 13.0, 2.0, 1.0, 8.0, 19.0, 7.0, 12.0, 11.0, 4.0, 9.0, 14.0])
    b = np.array([5.0, 9.0, 4.0, 2.0, 8.0, 11.0, 7.0, 19.0, 12.0, 20.0, 3.0, 6.0, 16.0, 2.0])
    rowids = np.arange(14, dtype=np.int64)
    arrays = [a, b, rowids]
    tree = KDTree(14, 2)
    split = stable_partition(arrays, 0, 14, 0, 6.0)
    left, right = tree.split_leaf(tree.root, 0, 6.0, split)
    split_b = stable_partition(arrays, right.start, right.end, 1, 5.0)
    tree.split_leaf(right, 1, 5.0, split_b)
    return tree, arrays


class TestStructure:
    def test_initial_tree_is_one_piece(self):
        tree = KDTree(100, 2)
        assert tree.node_count == 0
        assert tree.leaf_count == 1
        assert tree.height() == 0
        leaves = list(tree.iter_leaves())
        assert len(leaves) == 1
        assert (leaves[0].start, leaves[0].end) == (0, 100)

    def test_split_creates_children(self):
        tree, _ = build_two_level_tree()
        assert tree.node_count == 2
        assert tree.leaf_count == 3
        assert tree.height() == 2
        starts = [leaf.start for leaf in tree.iter_leaves()]
        assert starts == sorted(starts)

    def test_split_rejects_degenerate(self):
        tree = KDTree(10, 1)
        with pytest.raises(IndexStateError):
            tree.split_leaf(tree.root, 0, 5.0, 0)
        with pytest.raises(IndexStateError):
            tree.split_leaf(tree.root, 0, 5.0, 10)

    def test_children_levels_increment(self):
        tree = KDTree(10, 2)
        left, right = tree.split_leaf(tree.root, 0, 5.0, 4)
        assert left.level == 1 and right.level == 1

    def test_replace_detached_node_rejected(self):
        tree = KDTree(10, 1)
        left, right = tree.split_leaf(tree.root, 0, 5.0, 4)
        left.parent = None  # detach: claims to be a root it is not
        with pytest.raises(IndexStateError):
            tree._replace(left, right)

    def test_max_leaf_size(self):
        tree = KDTree(10, 1)
        tree.split_leaf(tree.root, 0, 5.0, 3)
        assert tree.max_leaf_size() == 7

    def test_zero_size_tree(self):
        tree = KDTree(0, 1)
        assert tree.max_leaf_size() == 0

    def test_negative_size_rejected(self):
        with pytest.raises(IndexStateError):
            KDTree(-1, 1)
        with pytest.raises(IndexStateError):
            KDTree(10, 0)


class TestSearch:
    def test_paper_lookup_example(self):
        # Query 6 < A <= 15 AND 0 < B <= 5 must land only in the piece
        # with A > 6 and B <= 5 (Fig. 2 of the paper).
        tree, arrays = build_two_level_tree()
        query = RangeQuery([6.0, 0.0], [15.0, 5.0])
        stats = QueryStats()
        matches = tree.search(query, stats)
        assert len(matches) == 1
        piece = matches[0].piece
        a, b = arrays[0], arrays[1]
        assert (a[piece.start : piece.end] > 6.0).all()
        assert (b[piece.start : piece.end] <= 5.0).all()
        assert stats.lookup_nodes > 0

    def test_residual_check_flags(self):
        tree, _ = build_two_level_tree()
        # Path implies A > 6 and B <= 5; query low on A is exactly 6 and
        # high on B exactly 5, so those checks can be dropped.
        query = RangeQuery([6.0, 0.0], [15.0, 5.0])
        match = tree.search(query, QueryStats())[0]
        assert not match.check_low[0]  # implied by A > 6
        assert match.check_high[0]  # A <= 15 still needs testing
        assert match.check_low[1]  # B > 0 still needs testing
        assert not match.check_high[1]  # implied by B <= 5

    def test_search_prunes_disjoint_subtrees(self):
        tree, _ = build_two_level_tree()
        query = RangeQuery([0.0, 0.0], [3.0, 30.0])  # A <= 3: left side only
        matches = tree.search(query, QueryStats())
        assert len(matches) == 1
        assert matches[0].piece.start == 0

    def test_search_covers_all_matching_pieces(self):
        tree, _ = build_two_level_tree()
        query = RangeQuery([0.0, 0.0], [30.0, 30.0])  # everything
        matches = tree.search(query, QueryStats())
        assert len(matches) == 3

    def test_search_empty_interval_on_boundary(self):
        tree, _ = build_two_level_tree()
        # A in (6, 6] is empty on the left of the root and non-empty right.
        query = RangeQuery([6.0, 0.0], [6.5, 30.0])
        matches = tree.search(query, QueryStats())
        assert all(match.piece.start >= 1 for match in matches)

    def test_iter_leaves_with_bounds_restricted(self):
        tree, _ = build_two_level_tree()
        query = RangeQuery([6.0, 0.0], [15.0, 5.0])
        restricted = list(tree.iter_leaves_with_bounds(query))
        assert len(restricted) == 1
        piece, lob, hib = restricted[0]
        assert lob[0] == 6.0
        assert hib[1] == 5.0

    def test_iter_leaves_with_bounds_all(self):
        tree, _ = build_two_level_tree()
        assert len(list(tree.iter_leaves_with_bounds())) == 3


class TestValidate:
    def test_valid_tree_passes(self):
        tree, arrays = build_two_level_tree()
        tree.validate(arrays[:2])

    def test_detects_bound_violation(self):
        tree, arrays = build_two_level_tree()
        # Corrupt: put a large A value into the left (A <= 6) piece.
        arrays[0][0] = 100.0
        with pytest.raises(IndexStateError):
            tree.validate(arrays[:2])

    def test_detects_range_corruption(self):
        tree, arrays = build_two_level_tree()
        first_leaf = next(iter(tree.iter_leaves()))
        first_leaf.start = 1  # break the tiling
        with pytest.raises(IndexStateError):
            tree.validate(arrays[:2])
