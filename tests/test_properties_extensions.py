"""Property-based tests for the extension modules.

The same master-invariant discipline as ``test_properties.py``, applied to
updates (appends/deletes), snapshots, dictionary encoding, and table
partitioning.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import AdaptiveKDTree, RangeQuery, Table
from repro.core.dictionary import DictionaryColumn
from repro.core.serialize import FrozenKDIndex, snapshot_index
from repro.core.table_partitioning import AdaptiveTablePartitioner
from repro.core.updates import AppendableAdaptiveKDTree


@st.composite
def evolving_workload(draw):
    """A table plus an interleaved script of queries/appends/deletes."""
    seed = draw(st.integers(0, 2**16))
    rng = np.random.default_rng(seed)
    n_rows = draw(st.integers(min_value=20, max_value=200))
    n_dims = draw(st.integers(min_value=1, max_value=3))
    matrix = rng.random((n_rows, n_dims)) * 100
    script = draw(
        st.lists(
            st.sampled_from(["query", "append", "delete"]),
            min_size=3,
            max_size=12,
        )
    )
    return seed, matrix, script


@settings(max_examples=20, deadline=None)
@given(data=evolving_workload())
def test_updates_master_invariant(data):
    seed, matrix, script = data
    rng = np.random.default_rng(seed + 1)
    n_dims = matrix.shape[1]
    table = Table.from_matrix(matrix)
    index = AppendableAdaptiveKDTree(table, size_threshold=8, merge_fraction=0.2)
    live = matrix.copy()
    deleted = set()
    for action in script:
        if action == "append":
            rows = rng.random((int(rng.integers(1, 20)), n_dims)) * 100
            index.append(rows)
            live = np.vstack([live, rows])
        elif action == "delete" and live.shape[0] > len(deleted):
            victim = int(rng.integers(0, live.shape[0]))
            index.delete([victim])
            deleted.add(victim)
        else:
            lows = rng.random(n_dims) * 100 - 10
            highs = lows + rng.random(n_dims) * 60
            query = RangeQuery(lows, highs)
            keep = np.ones(live.shape[0], dtype=bool)
            for dim in range(n_dims):
                keep &= (live[:, dim] > lows[dim]) & (live[:, dim] <= highs[dim])
            want = np.array(
                sorted(set(np.flatnonzero(keep).tolist()) - deleted),
                dtype=np.int64,
            )
            got = np.sort(index.query(query).row_ids)
            assert np.array_equal(got, want)


@settings(max_examples=15, deadline=None)
@given(
    seed=st.integers(0, 2**16),
    n_rows=st.integers(min_value=10, max_value=300),
    n_queries=st.integers(min_value=1, max_value=6),
)
def test_snapshot_roundtrip_property(seed, n_rows, n_queries):
    rng = np.random.default_rng(seed)
    table = Table.from_matrix(rng.random((n_rows, 2)) * 50)
    index = AdaptiveKDTree(table, size_threshold=8)
    queries = []
    for _ in range(n_queries):
        lows = rng.random(2) * 40
        queries.append(RangeQuery(lows, lows + 10))
        index.query(queries[-1])
    frozen = FrozenKDIndex.from_snapshot(snapshot_index(index))
    for query in queries:
        assert np.array_equal(
            np.sort(index.query(query).row_ids),
            np.sort(frozen.query(query).row_ids),
        )


@settings(max_examples=25, deadline=None)
@given(
    values=st.lists(
        st.sampled_from(["aa", "ab", "b", "ba", "c", "zz"]),
        min_size=1,
        max_size=100,
    ),
    low=st.sampled_from(["a", "aa", "ab", "b", "c", "y"]),
    high=st.sampled_from(["ab", "b", "ba", "c", "zz", "zzz"]),
)
def test_dictionary_range_translation_property(values, low, high):
    if low > high:
        low, high = high, low
    array = np.array(values)
    dictionary = DictionaryColumn(array)
    code_low, code_high = dictionary.translate_bounds(low, high)
    codes = dictionary.codes
    mask = (codes > code_low) & (codes <= code_high)
    want = (array > low) & (array <= high)
    assert np.array_equal(mask, want)


@settings(max_examples=15, deadline=None)
@given(
    seed=st.integers(0, 2**16),
    n_rows=st.integers(min_value=10, max_value=200),
    n_payload=st.integers(min_value=0, max_value=3),
)
def test_table_partitioner_payload_alignment_property(seed, n_rows, n_payload):
    rng = np.random.default_rng(seed)
    dims = [rng.random(n_rows) * 100 for _ in range(2)]
    payloads = [np.arange(n_rows) * 10.0 + p for p in range(n_payload)]
    table = Table(dims + payloads)
    partitioner = AdaptiveTablePartitioner(
        table, dimension_positions=[0, 1], size_threshold=8
    )
    for _ in range(4):
        lows = rng.random(2) * 80
        partitioner.query(RangeQuery(lows, lows + 20))
    # Every payload column must still be the original function of rowid.
    rowids = partitioner.row_ids_in_order()
    for p in range(n_payload):
        assert np.array_equal(partitioner.storage(2 + p), rowids * 10.0 + p)
    # And the dimension columns must match the original rows too.
    for dim in range(2):
        assert np.allclose(partitioner.storage(dim), dims[dim][rowids])
